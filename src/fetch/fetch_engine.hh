/**
 * @file
 * The fetch engine contract shared by all four front ends (EV8, FTB,
 * stream, trace cache).
 *
 * Engines are *self-directed*: they walk the static CodeImage using
 * their own predictors, exactly like hardware running ahead of
 * resolution, and therefore naturally fetch down wrong paths. The
 * processor model compares the fetched PC stream against the oracle
 * (committed) path, detects divergence, and calls redirect() when the
 * mispredicted branch resolves. Engines never see the oracle.
 *
 * Model conventions:
 *  - Instructions are predecoded in the i-cache: the type and taken
 *    target of direct branches are visible at fetch. Conditional
 *    directions, return targets, and indirect targets must be
 *    predicted.
 *  - When an engine has no target for a branch it must keep fetching
 *    sequentially (never stall waiting for a redirect it cannot know
 *    about); the divergence is caught and repaired by the processor.
 */

#ifndef SFETCH_FETCH_FETCH_ENGINE_HH
#define SFETCH_FETCH_FETCH_ENGINE_HH

#include <cassert>
#include <cstdint>
#include <string>

#include "bpred/ras.hh"
#include "cache/cache.hh"
#include "isa/instruction.hh"
#include "layout/code_image.hh"
#include "util/fixed_ring.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace sfetch
{

/**
 * Per-branch recovery checkpoint: shadow RAS state (Section 3.2 of
 * the paper) plus the speculative global direction history at
 * prediction time, restored exactly on a misprediction.
 */
struct EngineCheckpoint
{
    ReturnAddressStack::Checkpoint ras;
    std::uint64_t hist = 0;
};

/** One instruction produced by a fetch engine. */
struct FetchedInst
{
    Addr pc = kNoAddr;
    /**
     * Recovery token for branches (0 for non-branches): identifies
     * the checkpoint the engine must restore if this branch turns
     * out mispredicted.
     */
    std::uint64_t token = 0;
};

/**
 * One cycle's worth of fetched instructions: a caller-owned,
 * fixed-capacity inline array. The processor hands the same bundle
 * to the engine every cycle, so the simulate-one-cycle path never
 * touches the heap (the former `std::vector<FetchedInst>`
 * out-parameter allocated every call).
 */
class FetchBundle
{
  public:
    /** Widest supported fetch per cycle (2x the paper's max width). */
    static constexpr unsigned kCapacity = 16;

    void clear() { n_ = 0; }
    bool empty() const { return n_ == 0; }
    unsigned size() const { return n_; }

    void
    push_back(const FetchedInst &fi)
    {
        assert(n_ < kCapacity && "FetchBundle overflow: engine "
               "produced more than the supported fetch width");
        insts_[n_++] = fi;
    }

    const FetchedInst &
    operator[](unsigned i) const
    {
        assert(i < n_);
        return insts_[i];
    }

    const FetchedInst *begin() const { return insts_; }
    const FetchedInst *end() const { return insts_ + n_; }

  private:
    FetchedInst insts_[kCapacity];
    unsigned n_ = 0;
};

/** Resolution information passed to redirect(). */
struct ResolvedBranch
{
    Addr pc = kNoAddr;          //!< the mispredicted branch
    BranchType type = BranchType::None;
    bool taken = false;         //!< actual direction
    Addr target = kNoAddr;      //!< actual successor PC
    std::uint64_t token = 0;    //!< engine token of the branch
};

/** Commit-time information about a retired branch. */
struct CommittedBranch
{
    Addr pc = kNoAddr;
    BranchType type = BranchType::None;
    bool taken = false;
    Addr target = kNoAddr;      //!< actual successor PC
};

/** Common interface of all front ends. */
class FetchEngine
{
  public:
    virtual ~FetchEngine() = default;

    /**
     * Run one fetch cycle: append up to @p max_insts instructions to
     * @p out. May produce fewer (or none) on i-cache misses,
     * predictor stalls, or taken-branch cycle breaks. The caller
     * owns (and clears) the bundle; @p max_insts never exceeds
     * FetchBundle::kCapacity minus the bundle's current size.
     */
    virtual void fetchCycle(Cycle now, unsigned max_insts,
                            FetchBundle &out) = 0;

    /**
     * A branch fetched earlier was mispredicted and has resolved:
     * squash all younger state, repair histories, and resume at
     * @c rb.target.
     */
    virtual void redirect(const ResolvedBranch &rb) = 0;

    /** Train commit-side structures with a retired branch. */
    virtual void trainCommit(const CommittedBranch &cb) = 0;

    /** Reset to a pristine state fetching from @p start. */
    virtual void reset(Addr start) = 0;

    /** Display name. */
    virtual std::string name() const = 0;

    /** Engine-internal statistics. */
    virtual StatSet stats() const { return StatSet{}; }
};

/**
 * Fetch target queue entry: a request for a run of sequential
 * instructions, updated in place as the i-cache drains it (the
 * paper's "fetch request update mechanism", Fig. 6).
 */
struct FetchRequest
{
    Addr start = kNoAddr;
    std::uint32_t lenInsts = 0;
    std::uint64_t token = 0;
    /**
     * True when the request length is a real prediction; false for
     * sequential fall-back requests (run until something redirects).
     */
    bool bounded = true;
};

/**
 * Fixed-capacity FIFO of fetch requests, backed by a FixedRing: the
 * storage is allocated once at construction, so the per-cycle
 * predict/drain traffic never allocates.
 */
class FetchTargetQueue
{
  public:
    explicit FetchTargetQueue(std::size_t capacity = 4)
        : queue_(capacity)
    {}

    bool full() const { return queue_.full(); }
    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }
    std::size_t capacity() const { return queue_.capacity(); }

    /**
     * Enqueue @p req. The capacity is enforced here, not by caller
     * convention: pushing into a full queue asserts in debug builds
     * and drops the request (returning false) in release builds.
     */
    bool
    push(const FetchRequest &req)
    {
        assert(!full() &&
               "FetchTargetQueue overflow: check full() first");
        if (full())
            return false;
        queue_.push_back(req);
        return true;
    }

    FetchRequest &front() { return queue_.front(); }

    void pop() { queue_.pop_front(); }

    void clear() { queue_.clear(); }

  private:
    FixedRing<FetchRequest> queue_;
};

/**
 * Single-ported wide-line i-cache reader: models one line access per
 * cycle with blocking misses.
 */
class ICacheReader
{
  public:
    ICacheReader(MemoryHierarchy *mem, unsigned line_bytes)
        : mem_(mem), lineBytes_(line_bytes)
    {}

    /**
     * Attempt to read instructions starting at @p pc this cycle.
     * @return the number of sequential instructions available from
     * @p pc to the end of its cache line, or 0 while a miss is being
     * serviced.
     */
    unsigned
    available(Cycle now, Addr pc)
    {
        if (now < readyAt_)
            return 0;
        Cycle lat = mem_->accessInst(pc);
        if (lat > mem_->config().l1Latency) {
            // Miss: line arrives after the full latency.
            readyAt_ = now + lat;
            ++misses_;
            return 0;
        }
        Addr line_end = (pc & ~Addr(lineBytes_ - 1)) + lineBytes_;
        return static_cast<unsigned>((line_end - pc) / kInstBytes);
    }

    /**
     * Host-side prefetch of the tag state a future available(@p pc)
     * will probe: callers that know next cycle's fetch address hide
     * the host memory latency of the modelled i-cache lookup. Pure
     * hint; no modelled state changes.
     */
    void prefetch(Addr pc) const { mem_->prefetchInst(pc); }

    /**
     * Back to a pristine reader: clears the in-flight miss *and* the
     * miss counter, so engines reused via reset(start) report only
     * the misses of the current run.
     */
    void
    reset()
    {
        readyAt_ = 0;
        misses_ = 0;
    }

    std::uint64_t misses() const { return misses_; }
    unsigned lineBytes() const { return lineBytes_; }

  private:
    MemoryHierarchy *mem_;
    unsigned lineBytes_;
    Cycle readyAt_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace sfetch

#endif // SFETCH_FETCH_FETCH_ENGINE_HH

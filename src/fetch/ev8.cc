#include "fetch/ev8.hh"

#include <algorithm>

#include "sim/engine_registry.hh"

namespace sfetch
{

Ev8Engine::Ev8Engine(const Ev8Config &cfg, const CodeImage &image,
                     MemoryHierarchy *mem)
    : cfg_(cfg), image_(&image), reader_(mem, cfg.lineBytes),
      gskew_(cfg.gskew), btb_(cfg.btb), ras_(cfg.rasEntries),
      pc_(image.entryAddr()),
      linePred_(cfg.linePredEntries, kNoAddr)
{}

std::size_t
Ev8Engine::linePredIndex(Addr pc) const
{
    // Indexed at fetch-block (width) granularity.
    return (pc / (cfg_.lineBytes / 4)) & (linePred_.size() - 1);
}

void
Ev8Engine::fetchCycle(Cycle now, unsigned max_insts,
                      FetchBundle &out)
{
    if (now < stallUntil_)
        return; // decode-stage target fix in progress
    if (!image_->contains(pc_))
        return; // deep wrong path; wait for the redirect

    unsigned avail = reader_.available(now, pc_);
    if (avail == 0)
        return; // i-cache miss in service
    ++cyclesActive_;

    // The EV8 fetches from an aligned window of two width-sized
    // blocks, up to the first predicted-taken branch.
    const Addr cycle_start = pc_;
    const Addr window_bytes = cfg_.lineBytes / 2; // 2W instructions
    const Addr window_end =
        (pc_ & ~(window_bytes - 1)) + window_bytes;
    unsigned to_window = static_cast<unsigned>(
        (window_end - pc_) / kInstBytes);

    unsigned n = std::min(std::min(avail, max_insts), to_window);
    for (unsigned i = 0; i < n; ++i) {
        const StaticInst &si = image_->inst(pc_);
        FetchedInst fi;
        fi.pc = pc_;

        if (!si.isBranch()) {
            out.push_back(fi);
            ++instsFetched_;
            pc_ += kInstBytes;
            continue;
        }

        // Branch: checkpoint the RAS, then predict.
        fi.token = checkpoints_.put(
            EngineCheckpoint{ras_.save(), specHist_.value()});
        out.push_back(fi);
        ++instsFetched_;

        Addr seq = pc_ + kInstBytes;
        bool taken = false;
        Addr target = seq;
        bool cycle_break = false;

        // All taken targets come from the BTB (the EV8 fetch stage
        // has no decoder); direct jumps that miss the BTB are fixed
        // at decode at the cost of a short bubble.
        switch (si.btype) {
          case BranchType::CondDirect: {
            bool dir = gskew_.predict(pc_, specHist_.value());
            specHist_.push(dir);
            if (dir) {
                BtbEntry e = btb_.lookup(pc_);
                if (e.hit && image_->contains(e.target)) {
                    taken = true;
                    target = e.target;
                } else {
                    // Misfetch: predicted taken but no target known;
                    // fall through and let resolution repair it.
                    ++btbMissFetches_;
                }
            }
            break;
          }
          case BranchType::Jump:
          case BranchType::Call: {
            taken = true;
            BtbEntry e = btb_.lookup(pc_);
            if (e.hit && image_->contains(e.target)) {
                target = e.target;
            } else {
                target = image_->takenTarget(pc_);
                stallUntil_ = now + cfg_.decodeFixBubble;
                ++decodeFixes_;
                cycle_break = true;
            }
            if (si.btype == BranchType::Call)
                ras_.push(seq);
            break;
          }
          case BranchType::Return: {
            Addr t = ras_.pop();
            taken = true;
            target = (t != kNoAddr && image_->contains(t)) ? t : seq;
            break;
          }
          case BranchType::IndirectJump: {
            BtbEntry e = btb_.lookup(pc_);
            if (e.hit && image_->contains(e.target)) {
                taken = true;
                target = e.target;
            } else {
                target = seq; // no target: keep fetching sequentially
            }
            break;
          }
          default:
            break;
        }

        pc_ = target;
        if (taken || cycle_break) {
            // EV8 fetches up to the first taken branch per cycle.
            ++takenBreaks_;
            break;
        }
    }

    // Line predictor check: the cache was steered by the fast
    // next-fetch-address table; if the full prediction disagrees,
    // the next access restarts after a misfetch bubble.
    std::size_t lp = linePredIndex(cycle_start);
    if (linePred_[lp] != pc_) {
        linePred_[lp] = pc_;
        if (stallUntil_ < now + cfg_.linePredBubble)
            stallUntil_ = now + cfg_.linePredBubble + 1;
        ++lineMisfetches_;
    }
}

void
Ev8Engine::redirect(const ResolvedBranch &rb)
{
    // Precise repair from the branch's shadow checkpoint: history as
    // of prediction time, then the resolved outcome appended.
    if (const auto *cp = checkpoints_.get(rb.token)) {
        ras_.restore(cp->ras);
        specHist_.set(cp->hist);
    } else {
        specHist_.copyFrom(commitHist_);
    }
    if (rb.type == BranchType::CondDirect)
        specHist_.push(rb.taken);

    if (rb.type == BranchType::Call)
        ras_.push(rb.pc + kInstBytes);
    else if (rb.type == BranchType::Return)
        ras_.pop();

    pc_ = rb.target;
    stallUntil_ = 0;
}

void
Ev8Engine::trainCommit(const CommittedBranch &cb)
{
    if (cb.type == BranchType::CondDirect) {
        gskew_.update(cb.pc, commitHist_.value(), cb.taken);
        commitHist_.push(cb.taken);
    }
    // Every taken branch installs its target.
    if (cb.taken)
        btb_.update(cb.pc, cb.target, cb.type);
}

void
Ev8Engine::reset(Addr start)
{
    pc_ = start;
    stallUntil_ = 0;
    specHist_.clear();
    commitHist_.clear();
    reader_.reset();
}

StatSet
Ev8Engine::stats() const
{
    StatSet s;
    s.set("ev8.cycles_active", double(cyclesActive_));
    s.set("ev8.insts_fetched", double(instsFetched_));
    s.set("ev8.taken_breaks", double(takenBreaks_));
    s.set("ev8.icache_misses", double(reader_.misses()));
    s.set("ev8.btb_miss_fetches", double(btbMissFetches_));
    s.set("ev8.decode_fixes", double(decodeFixes_));
    s.set("ev8.line_misfetches", double(lineMisfetches_));
    s.set("ev8.btb_hit_rate", btb_.lookups()
          ? double(btb_.hits()) / double(btb_.lookups()) : 0.0);
    return s;
}

namespace detail
{

void
registerEv8Engine(EngineRegistry &reg)
{
    EngineDescriptor d;
    d.token = "ev8";
    d.displayName = "EV8+2bcgskew";
    d.summary =
        "coupled wide-line front end: 2bcgskew direction predictor, "
        "BTB, line predictor, 8-entry RAS (Table 2 baseline)";
    d.paperDefault = true;
    d.params
        .intParam("line", 0,
                  "i-cache line bytes (0 = 4 x pipe width)")
        .intParam("ras", 8, "return address stack entries", 1)
        .intParam("btb_entries", 2048, "BTB entries", 1)
        .intParam("btb_assoc", 4, "BTB associativity", 1)
        .intParam("line_pred", 4096, "line predictor entries", 1);
    d.factory = [](const ParamSet &p, const CodeImage &image,
                   MemoryHierarchy *mem) {
        Ev8Config c;
        c.lineBytes = static_cast<unsigned>(p.getInt("line"));
        c.rasEntries = static_cast<std::size_t>(p.getInt("ras"));
        c.btb.entries =
            static_cast<std::size_t>(p.getInt("btb_entries"));
        c.btb.assoc = static_cast<unsigned>(p.getInt("btb_assoc"));
        c.linePredEntries =
            static_cast<std::size_t>(p.getInt("line_pred"));
        return std::make_unique<Ev8Engine>(c, image, mem);
    };
    reg.add(std::move(d));
}

} // namespace detail

} // namespace sfetch

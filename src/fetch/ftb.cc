#include "fetch/ftb.hh"

#include <algorithm>

#include <cassert>

#include "sim/engine_registry.hh"

namespace sfetch
{

// ---- FtbTable ----

FtbTable::FtbTable(std::size_t entries, unsigned assoc) : assoc_(assoc)
{
    assert(entries % assoc == 0);
    numSets_ = entries / assoc;
    assert(numSets_ && !(numSets_ & (numSets_ - 1)));
    ways_.resize(entries);
}

std::size_t
FtbTable::setIndex(Addr start) const
{
    return (start / kInstBytes) & (numSets_ - 1);
}

Addr
FtbTable::tagOf(Addr start) const
{
    return (start / kInstBytes) / numSets_;
}

FtbHit
FtbTable::lookup(Addr start)
{
    ++lookups_;
    ++tick_;
    const std::size_t base = setIndex(start) * assoc_;
    const Addr tag = tagOf(start);
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = tick_;
            ++hits_;
            return FtbHit{true, way.lenInsts, way.type, way.target};
        }
    }
    return FtbHit{};
}

void
FtbTable::update(Addr start, std::uint32_t len_insts, BranchType type,
                 Addr target)
{
    ++tick_;
    const std::size_t base = setIndex(start) * assoc_;
    const Addr tag = tagOf(start);

    std::size_t victim = base;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.lenInsts = len_insts;
            way.type = type;
            way.target = target;
            way.lastUse = tick_;
            return;
        }
        std::uint64_t age = way.valid ? way.lastUse : 0;
        if (!way.valid) {
            victim = base + w;
            oldest = 0;
        } else if (age < oldest) {
            oldest = age;
            victim = base + w;
        }
    }

    Way &way = ways_[victim];
    way = Way{tag, len_insts, type, target, tick_, true};
}

// ---- FtbEngine ----

FtbEngine::FtbEngine(const FtbConfig &cfg, const CodeImage &image,
                     MemoryHierarchy *mem)
    : cfg_(cfg), image_(&image), reader_(mem, cfg.lineBytes),
      ftb_(cfg.ftbEntries, cfg.ftbAssoc), perceptron_(cfg.perceptron),
      ras_(cfg.rasEntries), ftq_(cfg.ftqEntries),
      predPc_(image.entryAddr()), commitBlockStart_(image.entryAddr())
{}

void
FtbEngine::predictStep()
{
    if (ftq_.full() || !image_->contains(predPc_))
        return;

    std::uint64_t token = checkpoints_.put(
        EngineCheckpoint{ras_.save(), specHist_.value()});
    FtbHit hit = ftb_.lookup(predPc_);

    FetchRequest req;
    req.start = predPc_;
    req.token = token;

    if (!hit.hit) {
        // FTB miss: request sequentially to the end of the line and
        // continue; embedded branches are implicitly not-taken until
        // the i-cache stage spots an unconditional transfer.
        Addr line_end = (predPc_ & ~Addr(cfg_.lineBytes - 1)) +
            cfg_.lineBytes;
        req.lenInsts = static_cast<std::uint32_t>(
            (line_end - predPc_) / kInstBytes);
        req.bounded = false;
        ftq_.push(req);
        predPc_ = line_end;
        ++seqRequests_;
        return;
    }

    req.lenInsts = hit.lenInsts;
    req.bounded = true;
    Addr term_pc = predPc_ + instsToBytes(hit.lenInsts - 1);
    Addr seq = predPc_ + instsToBytes(hit.lenInsts);
    Addr next = seq;

    switch (hit.type) {
      case BranchType::CondDirect: {
        bool dir = perceptron_.predict(term_pc, specHist_.value());
        specHist_.push(dir);
        if (dir)
            next = hit.target;
        break;
      }
      case BranchType::Jump:
      case BranchType::IndirectJump:
        next = hit.target;
        break;
      case BranchType::Call:
        ras_.push(seq);
        next = hit.target;
        break;
      case BranchType::Return: {
        Addr t = ras_.pop();
        next = (t != kNoAddr && image_->contains(t)) ? t : seq;
        break;
      }
      default:
        break;
    }

    ftq_.push(req);
    predPc_ = next;
    ++blocksPredicted_;
    blockInstsPredicted_ += hit.lenInsts;
}

void
FtbEngine::icacheStep(Cycle now, unsigned max_insts,
                      FetchBundle &out)
{
    if (ftq_.empty())
        return;
    FetchRequest &req = ftq_.front();
    if (!image_->contains(req.start)) {
        // Wrong-path request ran off the image; drop it.
        ftq_.pop();
        return;
    }

    unsigned avail = reader_.available(now, req.start);
    if (avail == 0)
        return;

    unsigned n = std::min(std::min(avail, max_insts), req.lenInsts);
    // The pc walks sequentially from a contained start; only the
    // image end can stop it, so hoist that bound out of the loop.
    n = std::min<unsigned>(
        n, static_cast<unsigned>(
               (image_->endAddr() - req.start) / kInstBytes));
    Addr pc = req.start;
    bool steered = false;

    for (unsigned i = 0; i < n; ++i) {
        const StaticInst &si = image_->inst(pc);
        FetchedInst fi;
        fi.pc = pc;
        if (si.isBranch())
            fi.token = req.token;
        out.push_back(fi);
        ++instsFetched_;
        pc += kInstBytes;

        if (!req.bounded && si.isBranch() &&
            si.btype != BranchType::CondDirect) {
            // Sequential (FTB-miss) fetch ran into an unconditional
            // transfer: steer the front end using predecode info.
            Addr seq = pc;
            Addr next = seq;
            switch (si.btype) {
              case BranchType::Jump:
              case BranchType::Call:
                next = image_->takenTarget(fi.pc);
                if (si.btype == BranchType::Call)
                    ras_.push(seq);
                break;
              case BranchType::Return: {
                Addr t = ras_.pop();
                next = (t != kNoAddr && image_->contains(t)) ? t : seq;
                break;
              }
              case BranchType::IndirectJump:
                next = seq; // no predictor here: fall through
                break;
              default:
                break;
            }
            ftq_.clear();
            predPc_ = next;
            steered = true;
            break;
        }
    }

    if (steered)
        return;

    std::uint32_t done = static_cast<std::uint32_t>(pc - req.start) /
        kInstBytes;
    req.start = pc;
    req.lenInsts -= std::min(req.lenInsts, done);
    if (req.lenInsts == 0)
        ftq_.pop();
}

void
FtbEngine::fetchCycle(Cycle now, unsigned max_insts,
                      FetchBundle &out)
{
    // The two decoupled pipelines advance in the same cycle; the
    // prediction stage runs ahead filling the FTQ.
    predictStep();
    icacheStep(now, max_insts, out);
}

void
FtbEngine::redirect(const ResolvedBranch &rb)
{
    if (const auto *cp = checkpoints_.get(rb.token)) {
        ras_.restore(cp->ras);
        specHist_.set(cp->hist);
    } else {
        specHist_.copyFrom(commitHist_);
    }
    // A newly-taken embedded branch enters the ever-taken set at
    // commit, so its outcome will be part of the committed history.
    if (rb.type == BranchType::CondDirect &&
        (everTaken_.count(rb.pc) || rb.taken)) {
        specHist_.push(rb.taken);
    }

    if (rb.type == BranchType::Call)
        ras_.push(rb.pc + kInstBytes);
    else if (rb.type == BranchType::Return)
        ras_.pop();

    ftq_.clear();
    predPc_ = rb.target;
}

void
FtbEngine::trainCommit(const CommittedBranch &cb)
{
    bool terminates;
    if (cb.taken) {
        everTaken_.insert(cb.pc);
        terminates = true;
    } else {
        terminates = everTaken_.count(cb.pc) != 0;
    }

    if (!terminates)
        return; // never-taken branch stays embedded in its block

    Addr block_end = cb.pc + kInstBytes;
    std::uint32_t len = static_cast<std::uint32_t>(
        (block_end - commitBlockStart_) / kInstBytes);

    // Over-length runs are chained as maximum-size blocks whose
    // "target" is simply the sequential continuation.
    while (len > cfg_.maxBlockInsts) {
        ftb_.update(commitBlockStart_, cfg_.maxBlockInsts,
                    BranchType::None,
                    commitBlockStart_ +
                        instsToBytes(cfg_.maxBlockInsts));
        commitBlockStart_ += instsToBytes(cfg_.maxBlockInsts);
        len -= cfg_.maxBlockInsts;
    }

    if (len >= 1 && block_end > commitBlockStart_) {
        Addr target = cb.taken ? cb.target
                               : image_->takenTarget(cb.pc);
        ftb_.update(commitBlockStart_, len, cb.type, target);
    }

    if (cb.type == BranchType::CondDirect) {
        // Note: a branch taken for the first time joins the
        // ever-taken set above, so it is trained from now on.
        perceptron_.update(cb.pc, commitHist_.value(), cb.taken);
        commitHist_.push(cb.taken);
    }

    commitBlockStart_ = cb.taken ? cb.target : cb.pc + kInstBytes;
}

void
FtbEngine::reset(Addr start)
{
    predPc_ = start;
    commitBlockStart_ = start;
    ftq_.clear();
    specHist_.clear();
    commitHist_.clear();
    everTaken_.clear();
    reader_.reset();
}

StatSet
FtbEngine::stats() const
{
    StatSet s;
    s.set("ftb.lookups", double(ftb_.lookups()));
    s.set("ftb.hits", double(ftb_.hits()));
    s.set("ftb.blocks_predicted", double(blocksPredicted_));
    s.set("ftb.avg_block_len", blocksPredicted_
          ? double(blockInstsPredicted_) / double(blocksPredicted_)
          : 0.0);
    s.set("ftb.seq_requests", double(seqRequests_));
    s.set("ftb.insts_fetched", double(instsFetched_));
    s.set("ftb.icache_misses", double(reader_.misses()));
    return s;
}

namespace detail
{

void
registerFtbEngine(EngineRegistry &reg)
{
    EngineDescriptor d;
    d.token = "ftb";
    d.displayName = "FTB+perceptron";
    d.summary =
        "decoupled fetch target buffer front end with perceptron "
        "direction prediction and a fetch target queue";
    d.paperDefault = true;
    d.params
        .intParam("line", 0,
                  "i-cache line bytes (0 = 4 x pipe width)")
        .intParam("ftq", 4, "fetch target queue entries", 1)
        .intParam("ras", 8, "return address stack entries", 1)
        .intParam("ftb_entries", 2048, "fetch target buffer entries",
                  1)
        .intParam("ftb_assoc", 4, "fetch target buffer associativity",
                  1)
        .intParam("max_block", 64,
                  "fetch block length cap in instructions", 1);
    d.factory = [](const ParamSet &p, const CodeImage &image,
                   MemoryHierarchy *mem) {
        FtbConfig c;
        c.lineBytes = static_cast<unsigned>(p.getInt("line"));
        c.ftqEntries = static_cast<std::size_t>(p.getInt("ftq"));
        c.rasEntries = static_cast<std::size_t>(p.getInt("ras"));
        c.ftbEntries =
            static_cast<std::size_t>(p.getInt("ftb_entries"));
        c.ftbAssoc = static_cast<unsigned>(p.getInt("ftb_assoc"));
        c.maxBlockInsts =
            static_cast<std::uint32_t>(p.getInt("max_block"));
        return std::make_unique<FtbEngine>(c, image, mem);
    };
    reg.add(std::move(d));
}

} // namespace detail

} // namespace sfetch

/**
 * @file
 * FTB fetch architecture (Reinman, Austin, Calder, ISCA 1999): the
 * paper's second baseline. A decoupled front end where the fetch
 * target buffer stores variable-length fetch blocks (ending at
 * ever-taken branches, embedding never-taken ones), predictions are
 * queued in an FTQ, and the i-cache is driven from the FTQ with
 * in-place request updates. Direction prediction is the Jimenez-Lin
 * perceptron, per the paper's "FTB+perceptron" configuration.
 */

#ifndef SFETCH_FETCH_FTB_HH
#define SFETCH_FETCH_FTB_HH

#include <unordered_set>

#include "bpred/history.hh"
#include "bpred/perceptron.hh"
#include "bpred/ras.hh"
#include "fetch/fetch_engine.hh"
#include "fetch/token_ring.hh"

namespace sfetch
{

/** Result of a fetch target buffer lookup. */
struct FtbHit
{
    bool hit = false;
    std::uint32_t lenInsts = 0;
    BranchType type = BranchType::None;
    Addr target = kNoAddr;
};

/**
 * The fetch target buffer proper: a tagged set-associative table of
 * variable-length fetch blocks, indexed by block start address.
 */
class FtbTable
{
  public:
    FtbTable(std::size_t entries, unsigned assoc);

    FtbHit lookup(Addr start);
    void update(Addr start, std::uint32_t len_insts, BranchType type,
                Addr target);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

  private:
    struct Way
    {
        Addr tag = kNoAddr;
        std::uint32_t lenInsts = 0;
        BranchType type = BranchType::None;
        Addr target = kNoAddr;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t setIndex(Addr start) const;
    Addr tagOf(Addr start) const;

    std::size_t numSets_;
    unsigned assoc_;
    std::vector<Way> ways_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

/** Configuration of the FTB front end. */
struct FtbConfig
{
    std::size_t ftbEntries = 2048; //!< paper: 2048-entry, 4-way
    unsigned ftbAssoc = 4;
    PerceptronConfig perceptron;
    std::size_t rasEntries = 8;
    std::size_t ftqEntries = 4;    //!< paper: 4-entry FTQ
    unsigned lineBytes = 128;
    std::uint32_t maxBlockInsts = 64;
};

/** The FTB+perceptron fetch engine. */
class FtbEngine : public FetchEngine
{
  public:
    FtbEngine(const FtbConfig &cfg, const CodeImage &image,
              MemoryHierarchy *mem);

    void fetchCycle(Cycle now, unsigned max_insts,
                    FetchBundle &out) override;
    void redirect(const ResolvedBranch &rb) override;
    void trainCommit(const CommittedBranch &cb) override;
    void reset(Addr start) override;
    std::string name() const override { return "FTB+perceptron"; }
    StatSet stats() const override;

  private:
    /** Prediction pipeline: generate one fetch request per cycle. */
    void predictStep();

    /** I-cache pipeline: drain the FTQ head. */
    void icacheStep(Cycle now, unsigned max_insts,
                    FetchBundle &out);

    FtbConfig cfg_;
    const CodeImage *image_;
    ICacheReader reader_;
    FtbTable ftb_;
    PerceptronPredictor perceptron_;
    ReturnAddressStack ras_;
    GlobalHistory specHist_;
    GlobalHistory commitHist_;
    FetchTargetQueue ftq_;
    TokenRing<EngineCheckpoint> checkpoints_;

    Addr predPc_ = kNoAddr;

    /** Branches that have been taken at least once (block enders). */
    std::unordered_set<Addr> everTaken_;
    Addr commitBlockStart_ = kNoAddr;

    // stats
    std::uint64_t blocksPredicted_ = 0;
    std::uint64_t blockInstsPredicted_ = 0;
    std::uint64_t seqRequests_ = 0;
    std::uint64_t instsFetched_ = 0;
};

} // namespace sfetch

#endif // SFETCH_FETCH_FTB_HH

/**
 * @file
 * The `seq` front end: a deliberately minimal next-line-only fetch
 * engine with no prediction at all. It streams instructions
 * sequentially from the i-cache and relies entirely on processor
 * redirects to follow taken branches — the weakest possible baseline
 * (every taken branch is a "misprediction"), and the registry's
 * living example of adding a front end in one self-contained file:
 * engine + descriptor + registration, zero driver or CLI changes.
 */

#ifndef SFETCH_FETCH_SEQ_HH
#define SFETCH_FETCH_SEQ_HH

#include "fetch/fetch_engine.hh"

namespace sfetch
{

/** Configuration of the sequential front end. */
struct SeqConfig
{
    unsigned lineBytes = 128;
};

/** Next-line-only sequential fetch engine. */
class SeqEngine : public FetchEngine
{
  public:
    SeqEngine(const SeqConfig &cfg, const CodeImage &image,
              MemoryHierarchy *mem);

    void fetchCycle(Cycle now, unsigned max_insts,
                    FetchBundle &out) override;
    void redirect(const ResolvedBranch &rb) override;
    void trainCommit(const CommittedBranch &cb) override;
    void reset(Addr start) override;
    std::string name() const override { return "NextLine"; }
    StatSet stats() const override;

  private:
    SeqConfig cfg_;
    const CodeImage *image_;
    ICacheReader reader_;
    Addr pc_ = kNoAddr;

    std::uint64_t instsFetched_ = 0;
    std::uint64_t redirects_ = 0;
};

} // namespace sfetch

#endif // SFETCH_FETCH_SEQ_HH

/**
 * @file
 * EV8-style fetch engine: the paper's first baseline. A coupled
 * front end that fetches sequential instructions from a single wide
 * i-cache line, past not-taken branches, up to the first predicted-
 * taken branch, using the 2bcgskew conditional predictor (Seznec et
 * al.) and an 8-entry RAS. Indirect targets come from a BTB.
 */

#ifndef SFETCH_FETCH_EV8_HH
#define SFETCH_FETCH_EV8_HH

#include "bpred/btb.hh"
#include "bpred/gskew.hh"
#include "bpred/history.hh"
#include "bpred/ras.hh"
#include "fetch/fetch_engine.hh"
#include "fetch/token_ring.hh"

namespace sfetch
{

/** Configuration of the EV8 front end. */
struct Ev8Config
{
    GskewConfig gskew;
    BtbConfig btb{2048, 4};
    std::size_t rasEntries = 8;
    unsigned lineBytes = 128; //!< 4x an 8-wide pipe (Table 2)
    /**
     * Decode-stage bubble when a direct jump/call misses the BTB and
     * the target is recomputed at decode.
     */
    Cycle decodeFixBubble = 2;

    /**
     * Line predictor (21264/EV8 style): the i-cache is steered by a
     * next-fetch-address table; when the slower 2bcgskew/BTB outcome
     * disagrees, the fetch restarts with a one-cycle misfetch bubble.
     */
    std::size_t linePredEntries = 4096;
    Cycle linePredBubble = 1;
};

/** The EV8 fetch engine. */
class Ev8Engine : public FetchEngine
{
  public:
    Ev8Engine(const Ev8Config &cfg, const CodeImage &image,
              MemoryHierarchy *mem);

    void fetchCycle(Cycle now, unsigned max_insts,
                    FetchBundle &out) override;
    void redirect(const ResolvedBranch &rb) override;
    void trainCommit(const CommittedBranch &cb) override;
    void reset(Addr start) override;
    std::string name() const override { return "EV8+2bcgskew"; }
    StatSet stats() const override;

  private:
    Ev8Config cfg_;
    const CodeImage *image_;
    ICacheReader reader_;
    GskewPredictor gskew_;
    Btb btb_;
    ReturnAddressStack ras_;
    GlobalHistory specHist_;
    GlobalHistory commitHist_;
    TokenRing<EngineCheckpoint> checkpoints_;

    Addr pc_ = kNoAddr;
    Cycle stallUntil_ = 0; //!< decode-fix bubble in progress

    /** Line predictor: fetch address -> predicted next fetch addr. */
    std::vector<Addr> linePred_;

    std::size_t linePredIndex(Addr pc) const;

    // stats
    std::uint64_t cyclesActive_ = 0;
    std::uint64_t instsFetched_ = 0;
    std::uint64_t takenBreaks_ = 0;
    std::uint64_t btbMissFetches_ = 0;
    std::uint64_t decodeFixes_ = 0;
    std::uint64_t lineMisfetches_ = 0;
};

} // namespace sfetch

#endif // SFETCH_FETCH_EV8_HH

/**
 * @file
 * Bounded token-indexed checkpoint storage. Fetch engines assign a
 * monotonically increasing token to every in-flight branch and store
 * a recovery checkpoint under it; the in-flight window is far smaller
 * than the ring, so collisions cannot occur for live branches.
 */

#ifndef SFETCH_FETCH_TOKEN_RING_HH
#define SFETCH_FETCH_TOKEN_RING_HH

#include <cstdint>
#include <vector>

namespace sfetch
{

/**
 * Ring buffer mapping tokens to checkpoints of type T. The capacity
 * is rounded up to a power of two so the token -> slot mapping is a
 * mask instead of a 64-bit division on the per-branch hot path;
 * rounding up only widens the already-generous collision window.
 */
template <typename T>
class TokenRing
{
  public:
    explicit TokenRing(std::size_t capacity = 4096)
    {
        std::size_t pow2 = 1;
        while (pow2 < capacity)
            pow2 <<= 1;
        slots_.resize(pow2);
        mask_ = pow2 - 1;
    }

    /** Allocate the next token and store @p value under it. */
    std::uint64_t
    put(const T &value)
    {
        std::uint64_t token = next_++;
        Slot &s = slots_[token & mask_];
        s.token = token;
        s.value = value;
        return token;
    }

    /** Retrieve the checkpoint for @p token; null if overwritten. */
    const T *
    get(std::uint64_t token) const
    {
        const Slot &s = slots_[token & mask_];
        return (s.token == token) ? &s.value : nullptr;
    }

  private:
    struct Slot
    {
        std::uint64_t token = UINT64_MAX;
        T value{};
    };

    std::vector<Slot> slots_;
    std::uint64_t mask_ = 0;
    std::uint64_t next_ = 1; // token 0 means "no token"
};

} // namespace sfetch

#endif // SFETCH_FETCH_TOKEN_RING_HH

/**
 * @file
 * Bounded token-indexed checkpoint storage. Fetch engines assign a
 * monotonically increasing token to every in-flight branch and store
 * a recovery checkpoint under it; the in-flight window is far smaller
 * than the ring, so collisions cannot occur for live branches.
 */

#ifndef SFETCH_FETCH_TOKEN_RING_HH
#define SFETCH_FETCH_TOKEN_RING_HH

#include <cstdint>
#include <vector>

namespace sfetch
{

/** Ring buffer mapping tokens to checkpoints of type T. */
template <typename T>
class TokenRing
{
  public:
    explicit TokenRing(std::size_t capacity = 4096)
        : slots_(capacity)
    {}

    /** Allocate the next token and store @p value under it. */
    std::uint64_t
    put(const T &value)
    {
        std::uint64_t token = next_++;
        Slot &s = slots_[token % slots_.size()];
        s.token = token;
        s.value = value;
        return token;
    }

    /** Retrieve the checkpoint for @p token; null if overwritten. */
    const T *
    get(std::uint64_t token) const
    {
        const Slot &s = slots_[token % slots_.size()];
        return (s.token == token) ? &s.value : nullptr;
    }

  private:
    struct Slot
    {
        std::uint64_t token = UINT64_MAX;
        T value{};
    };

    std::vector<Slot> slots_;
    std::uint64_t next_ = 1; // token 0 means "no token"
};

} // namespace sfetch

#endif // SFETCH_FETCH_TOKEN_RING_HH

#include "fetch/seq.hh"

#include <algorithm>

#include "sim/engine_registry.hh"

namespace sfetch
{

SeqEngine::SeqEngine(const SeqConfig &cfg, const CodeImage &image,
                     MemoryHierarchy *mem)
    : cfg_(cfg), image_(&image), reader_(mem, cfg.lineBytes),
      pc_(image.entryAddr())
{}

void
SeqEngine::fetchCycle(Cycle now, unsigned max_insts,
                      FetchBundle &out)
{
    if (!image_->contains(pc_))
        return; // ran off the image: wait for a redirect

    unsigned avail = reader_.available(now, pc_);
    if (avail == 0)
        return; // i-cache miss in service

    unsigned n = std::min(avail, max_insts);
    for (unsigned i = 0; i < n; ++i) {
        FetchedInst fi;
        fi.pc = pc_;
        out.push_back(fi);
        pc_ += kInstBytes;
    }
    instsFetched_ += n;
}

void
SeqEngine::redirect(const ResolvedBranch &rb)
{
    pc_ = rb.target;
    ++redirects_;
}

void
SeqEngine::trainCommit(const CommittedBranch &)
{
    // Nothing learns; that is the point.
}

void
SeqEngine::reset(Addr start)
{
    pc_ = start;
    reader_.reset();
    instsFetched_ = 0;
    redirects_ = 0;
}

StatSet
SeqEngine::stats() const
{
    StatSet s;
    s.set("seq.insts_fetched", double(instsFetched_));
    s.set("seq.redirects", double(redirects_));
    s.set("seq.icache_misses", double(reader_.misses()));
    return s;
}

namespace detail
{

void
registerSeqEngine(EngineRegistry &reg)
{
    EngineDescriptor d;
    d.token = "seq";
    d.displayName = "NextLine";
    d.summary =
        "predictionless next-line sequential fetch; the weakest "
        "baseline and the one-file extensibility example";
    d.aliases = {"nextline"};
    d.params.intParam("line", 0,
                      "i-cache line bytes (0 = 4 x pipe width)");
    d.factory = [](const ParamSet &p, const CodeImage &image,
                   MemoryHierarchy *mem) {
        SeqConfig c;
        c.lineBytes = static_cast<unsigned>(p.getInt("line"));
        return std::make_unique<SeqEngine>(c, image, mem);
    };
    reg.add(std::move(d));
}

} // namespace detail

} // namespace sfetch

#include "bpred/direction_pred.hh"

#include <cassert>

namespace sfetch
{

namespace
{

[[maybe_unused]] bool
isPow2(std::size_t x)
{
    return x && (x & (x - 1)) == 0;
}

} // namespace

// ---- BimodalPredictor ----

BimodalPredictor::BimodalPredictor(std::size_t entries,
                                   unsigned counter_bits)
    : table_(entries, SatCounter(counter_bits,
                                 std::uint8_t(1u << (counter_bits - 1))))
{
    assert(isPow2(entries));
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc / kInstBytes) & (table_.size() - 1);
}

bool
BimodalPredictor::predict(Addr pc, std::uint64_t)
{
    return table_[index(pc)].taken();
}

void
BimodalPredictor::update(Addr pc, std::uint64_t, bool taken)
{
    table_[index(pc)].update(taken);
}

std::uint64_t
BimodalPredictor::storageBits() const
{
    return table_.size() * table_.front().bits();
}

// ---- GsharePredictor ----

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits,
                                 unsigned counter_bits)
    : table_(entries, SatCounter(counter_bits,
                                 std::uint8_t(1u << (counter_bits - 1)))),
      historyBits_(history_bits)
{
    assert(isPow2(entries));
}

std::size_t
GsharePredictor::index(Addr pc, std::uint64_t ghist) const
{
    std::uint64_t h = ghist & ((1ULL << historyBits_) - 1);
    return ((pc / kInstBytes) ^ h) & (table_.size() - 1);
}

bool
GsharePredictor::predict(Addr pc, std::uint64_t ghist)
{
    return table_[index(pc, ghist)].taken();
}

void
GsharePredictor::update(Addr pc, std::uint64_t ghist, bool taken)
{
    table_[index(pc, ghist)].update(taken);
}

std::uint64_t
GsharePredictor::storageBits() const
{
    return table_.size() * table_.front().bits();
}

// ---- LocalPredictor ----

LocalPredictor::LocalPredictor(std::size_t history_entries,
                               unsigned local_bits,
                               std::size_t pattern_entries,
                               unsigned counter_bits)
    : localHist_(history_entries, 0),
      pattern_(pattern_entries,
               SatCounter(counter_bits,
                          std::uint8_t(1u << (counter_bits - 1)))),
      localBits_(local_bits)
{
    assert(isPow2(history_entries));
    assert(isPow2(pattern_entries));
}

bool
LocalPredictor::predict(Addr pc, std::uint64_t)
{
    std::uint32_t lh =
        localHist_[(pc / kInstBytes) & (localHist_.size() - 1)];
    std::size_t idx =
        (lh & ((1u << localBits_) - 1)) & (pattern_.size() - 1);
    return pattern_[idx].taken();
}

void
LocalPredictor::update(Addr pc, std::uint64_t, bool taken)
{
    std::uint32_t &lh =
        localHist_[(pc / kInstBytes) & (localHist_.size() - 1)];
    std::size_t idx =
        (lh & ((1u << localBits_) - 1)) & (pattern_.size() - 1);
    pattern_[idx].update(taken);
    lh = (lh << 1) | (taken ? 1u : 0u);
}

std::uint64_t
LocalPredictor::storageBits() const
{
    return localHist_.size() * localBits_ +
           pattern_.size() * pattern_.front().bits();
}

} // namespace sfetch

/**
 * @file
 * 2bcgskew: the Alpha EV8 conditional branch predictor (Seznec,
 * Felix, Krishnan, Sazeides, ISCA 2002), as used by the paper's EV8
 * baseline. Four banks (BIM, G0, G1, META) with skewed indexing;
 * the final prediction arbitrates between the bimodal bank and the
 * e-gskew majority vote, with the partial-update policy of the EV8.
 */

#ifndef SFETCH_BPRED_GSKEW_HH
#define SFETCH_BPRED_GSKEW_HH

#include <vector>

#include "bpred/direction_pred.hh"
#include "util/sat_counter.hh"

namespace sfetch
{

/** Configuration of the 2bcgskew predictor. */
struct GskewConfig
{
    std::size_t entriesPerBank = 32768; //!< paper: 4 x 32K entries
    unsigned historyBits = 15;          //!< paper: 15-bit history
    unsigned shortHistoryBits = 6;      //!< G0 uses a shorter history
    unsigned counterBits = 2;
};

/** The 2bcgskew hybrid skewed predictor. */
class GskewPredictor : public DirectionPredictor
{
  public:
    explicit GskewPredictor(const GskewConfig &cfg = GskewConfig{});

    bool predict(Addr pc, std::uint64_t ghist) override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::uint64_t storageBits() const override;

  private:
    enum Bank { BIM = 0, G0 = 1, G1 = 2, META = 3 };

    /** Skewed index of @p bank for (pc, hist). */
    std::size_t index(unsigned bank, Addr pc,
                      std::uint64_t ghist) const;

    /**
     * All four bank indices in one pass: the shared (pc, history)
     * preparation is done once and the four independent skew hashes
     * run as straight-line code, where index()-per-bank re-derived
     * the masks and inputs four times. Values identical to index().
     */
    void indices(Addr pc, std::uint64_t ghist,
                 std::size_t idx[4]) const;

    GskewConfig cfg_;
    // Hoisted from the per-lookup path: the history masks and the
    // bank index mask are fixed at construction.
    std::uint64_t histMask_ = 0;
    std::uint64_t shortMask_ = 0;
    std::size_t bankMask_ = 0;
    std::vector<SatCounter> banks_[4];
};

} // namespace sfetch

#endif // SFETCH_BPRED_GSKEW_HH

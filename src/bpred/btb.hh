/**
 * @file
 * Branch target buffer: tagged set-associative storage mapping branch
 * PCs to (target, branch type). Used directly by the EV8 front end,
 * and as the backup predictor of the trace cache's secondary path.
 * For indirect branches the stored target is the last observed one.
 */

#ifndef SFETCH_BPRED_BTB_HH
#define SFETCH_BPRED_BTB_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "util/types.hh"

namespace sfetch
{

/** BTB geometry. */
struct BtbConfig
{
    std::size_t entries = 2048; //!< paper: 2048-entry
    unsigned assoc = 4;         //!< paper: 4-way
};

/** Result of a BTB lookup. */
struct BtbEntry
{
    bool hit = false;
    Addr target = kNoAddr;
    BranchType type = BranchType::None;
};

/** Tagged set-associative BTB with LRU replacement. */
class Btb
{
  public:
    explicit Btb(const BtbConfig &cfg = BtbConfig{});

    /** Look up the branch at @p pc. */
    BtbEntry lookup(Addr pc);

    /** Install or refresh the entry for the branch at @p pc. */
    void update(Addr pc, Addr target, BranchType type);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

    std::size_t numEntries() const { return cfg_.entries; }

  private:
    struct Way
    {
        Addr tag = kNoAddr;
        Addr target = kNoAddr;
        BranchType type = BranchType::None;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t setIndex(Addr pc) const;
    Addr tagOf(Addr pc) const;

    BtbConfig cfg_;
    std::size_t numSets_;
    std::vector<Way> ways_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace sfetch

#endif // SFETCH_BPRED_BTB_HH

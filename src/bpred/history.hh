/**
 * @file
 * Global branch history register with checkpointing. Fetch engines
 * keep a speculative copy (updated at predict time) and a committed
 * copy (updated at retire time); on a misprediction the speculative
 * copy is rebuilt from the committed one, as the paper describes for
 * the stream predictor's two path registers.
 */

#ifndef SFETCH_BPRED_HISTORY_HH
#define SFETCH_BPRED_HISTORY_HH

#include <cstdint>

namespace sfetch
{

/** Shift-register global direction history (newest bit = LSB). */
class GlobalHistory
{
  public:
    void
    push(bool taken)
    {
        bits_ = (bits_ << 1) | (taken ? 1u : 0u);
    }

    std::uint64_t value() const { return bits_; }

    /** Low @p n bits of history. */
    std::uint64_t
    low(unsigned n) const
    {
        return n >= 64 ? bits_ : (bits_ & ((1ULL << n) - 1));
    }

    void set(std::uint64_t v) { bits_ = v; }
    void copyFrom(const GlobalHistory &other) { bits_ = other.bits_; }
    void clear() { bits_ = 0; }

  private:
    std::uint64_t bits_ = 0;
};

} // namespace sfetch

#endif // SFETCH_BPRED_HISTORY_HH

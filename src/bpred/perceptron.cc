#include "bpred/perceptron.hh"

#include <cassert>
#include <cmath>

namespace sfetch
{

PerceptronPredictor::PerceptronPredictor(const PerceptronConfig &cfg)
    : cfg_(cfg)
{
    unsigned h = cfg_.globalBits + cfg_.localBits;
    theta_ = static_cast<int>(std::lround(1.93 * h + 14.0));
    rowLen_ = 1 + cfg_.globalBits + cfg_.localBits;
    weights_.assign(cfg_.numPerceptrons * rowLen_, 0);
    localHist_.assign(cfg_.localEntries, 0);
}

std::size_t
PerceptronPredictor::pcIndex(Addr pc) const
{
    return (pc / kInstBytes) % cfg_.numPerceptrons;
}

std::size_t
PerceptronPredictor::localIndex(Addr pc) const
{
    return (pc / kInstBytes) % cfg_.localEntries;
}

int
PerceptronPredictor::output(Addr pc, std::uint64_t ghist) const
{
    const std::int16_t *w = &weights_[pcIndex(pc) * rowLen_];
    int y = w[0]; // bias weight
    for (unsigned i = 0; i < cfg_.globalBits; ++i) {
        bool bit = (ghist >> i) & 1;
        y += bit ? w[1 + i] : -w[1 + i];
    }
    std::uint32_t lh = localHist_[localIndex(pc)];
    for (unsigned i = 0; i < cfg_.localBits; ++i) {
        bool bit = (lh >> i) & 1;
        y += bit ? w[1 + cfg_.globalBits + i]
                 : -w[1 + cfg_.globalBits + i];
    }
    return y;
}

bool
PerceptronPredictor::predict(Addr pc, std::uint64_t ghist)
{
    return output(pc, ghist) >= 0;
}

void
PerceptronPredictor::update(Addr pc, std::uint64_t ghist, bool taken)
{
    int y = output(pc, ghist);
    bool pred = y >= 0;

    if (pred != taken || std::abs(y) <= theta_) {
        std::int16_t *w = &weights_[pcIndex(pc) * rowLen_];
        auto adjust = [&](std::int16_t &weight, bool agree) {
            int v = weight + (agree ? 1 : -1);
            if (v > cfg_.weightMax)
                v = cfg_.weightMax;
            if (v < -cfg_.weightMax - 1)
                v = -cfg_.weightMax - 1;
            weight = static_cast<std::int16_t>(v);
        };
        adjust(w[0], taken);
        for (unsigned i = 0; i < cfg_.globalBits; ++i) {
            bool bit = (ghist >> i) & 1;
            adjust(w[1 + i], bit == taken);
        }
        std::uint32_t lh = localHist_[localIndex(pc)];
        for (unsigned i = 0; i < cfg_.localBits; ++i) {
            bool bit = (lh >> i) & 1;
            adjust(w[1 + cfg_.globalBits + i], bit == taken);
        }
    }

    std::uint32_t &lh = localHist_[localIndex(pc)];
    lh = ((lh << 1) | (taken ? 1u : 0u)) &
         ((1u << cfg_.localBits) - 1);
}

std::uint64_t
PerceptronPredictor::storageBits() const
{
    return std::uint64_t(weights_.size()) * 8 +
           std::uint64_t(localHist_.size()) * cfg_.localBits;
}

} // namespace sfetch

#include "bpred/perceptron.hh"

#include <cassert>
#include <cmath>

#include "util/simd.hh"

namespace sfetch
{

namespace
{

bool
isPow2(std::size_t n)
{
    return n && !(n & (n - 1));
}

} // namespace

PerceptronPredictor::PerceptronPredictor(const PerceptronConfig &cfg)
    : cfg_(cfg)
{
    unsigned h = cfg_.globalBits + cfg_.localBits;
    theta_ = static_cast<int>(std::lround(1.93 * h + 14.0));
    rowLen_ = 1 + cfg_.globalBits + cfg_.localBits;
    weights_.assign(cfg_.numPerceptrons * rowLen_, 0);
    localHist_.assign(cfg_.localEntries, 0);
    pow2Tables_ =
        isPow2(cfg_.numPerceptrons) && isPow2(cfg_.localEntries);
    pcMask_ = cfg_.numPerceptrons - 1;
    localMask_ = cfg_.localEntries - 1;
}

std::size_t
PerceptronPredictor::pcIndex(Addr pc) const
{
    const std::size_t word = pc / kInstBytes;
    return pow2Tables_ ? (word & pcMask_)
                       : (word % cfg_.numPerceptrons);
}

std::size_t
PerceptronPredictor::localIndex(Addr pc) const
{
    const std::size_t word = pc / kInstBytes;
    return pow2Tables_ ? (word & localMask_)
                       : (word % cfg_.localEntries);
}

int
PerceptronPredictor::output(Addr pc, std::uint64_t ghist) const
{
    // The selected-sign dot product is the per-prediction cost of a
    // perceptron: 40 global + 14 local signed adds. dotSelect16
    // computes both spans with the SIMD shim (exact integer
    // arithmetic, so vector and scalar forms agree bit for bit).
    const std::int16_t *w = &weights_[pcIndex(pc) * rowLen_];
    int y = w[0]; // bias weight
    y += simd::dotSelect16(w + 1, ghist, cfg_.globalBits);
    const std::uint32_t lh = localHist_[localIndex(pc)];
    y += simd::dotSelect16(w + 1 + cfg_.globalBits, lh,
                           cfg_.localBits);
    return y;
}

bool
PerceptronPredictor::predict(Addr pc, std::uint64_t ghist)
{
    return output(pc, ghist) >= 0;
}

void
PerceptronPredictor::update(Addr pc, std::uint64_t ghist, bool taken)
{
    int y = output(pc, ghist);
    bool pred = y >= 0;

    if (pred != taken || std::abs(y) <= theta_) {
        std::int16_t *w = &weights_[pcIndex(pc) * rowLen_];
        auto adjust = [&](std::int16_t &weight, bool agree) {
            int v = weight + (agree ? 1 : -1);
            if (v > cfg_.weightMax)
                v = cfg_.weightMax;
            if (v < -cfg_.weightMax - 1)
                v = -cfg_.weightMax - 1;
            weight = static_cast<std::int16_t>(v);
        };
        adjust(w[0], taken);
        for (unsigned i = 0; i < cfg_.globalBits; ++i) {
            bool bit = (ghist >> i) & 1;
            adjust(w[1 + i], bit == taken);
        }
        std::uint32_t lh = localHist_[localIndex(pc)];
        for (unsigned i = 0; i < cfg_.localBits; ++i) {
            bool bit = (lh >> i) & 1;
            adjust(w[1 + cfg_.globalBits + i], bit == taken);
        }
    }

    std::uint32_t &lh = localHist_[localIndex(pc)];
    lh = ((lh << 1) | (taken ? 1u : 0u)) &
         ((1u << cfg_.localBits) - 1);
}

std::uint64_t
PerceptronPredictor::storageBits() const
{
    return std::uint64_t(weights_.size()) * 8 +
           std::uint64_t(localHist_.size()) * cfg_.localBits;
}

} // namespace sfetch

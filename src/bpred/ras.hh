/**
 * @file
 * Return address stack with misprediction repair. Following the
 * paper (Section 3.2): the stack is updated speculatively at predict
 * time, and a shadow copy of the stack pointer and top-of-stack value
 * is kept with each in-flight branch; on a misprediction both are
 * restored.
 */

#ifndef SFETCH_BPRED_RAS_HH
#define SFETCH_BPRED_RAS_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace sfetch
{

/** Circular return address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t entries = 8)
        : stack_(entries, kNoAddr)
    {}

    /** Push a return address (speculatively, at predict time). */
    void
    push(Addr ret)
    {
        sp_ = sp_ + 1 == stack_.size() ? 0 : sp_ + 1;
        stack_[sp_] = ret;
    }

    /** Pop and return the predicted return target. */
    Addr
    pop()
    {
        Addr top = stack_[sp_];
        sp_ = (sp_ == 0 ? stack_.size() : sp_) - 1;
        return top;
    }

    /** Top of stack without popping. */
    Addr top() const { return stack_[sp_]; }

    /** Shadow state carried with each in-flight branch. */
    struct Checkpoint
    {
        std::size_t sp = 0;
        Addr tos = kNoAddr;
    };

    Checkpoint
    save() const
    {
        return Checkpoint{sp_, stack_[sp_]};
    }

    /** Restore stack pointer and top-of-stack after a misprediction. */
    void
    restore(const Checkpoint &cp)
    {
        sp_ = cp.sp;
        stack_[sp_] = cp.tos;
    }

    std::size_t capacity() const { return stack_.size(); }

  private:
    std::vector<Addr> stack_;
    std::size_t sp_ = 0;
};

} // namespace sfetch

#endif // SFETCH_BPRED_RAS_HH

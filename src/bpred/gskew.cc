#include "bpred/gskew.hh"

#include <cassert>

namespace sfetch
{

namespace
{

/**
 * The H / H^-1 skewing functions of the skewed-associative cache
 * literature, applied to predictor bank indexing. We use cheap
 * odd-multiplier hashes that decorrelate the banks equivalently for
 * simulation purposes.
 */
std::uint64_t
skewHash(unsigned bank, std::uint64_t x)
{
    static const std::uint64_t muls[4] = {
        0x9E3779B97F4A7C15ULL, 0xC2B2AE3D27D4EB4FULL,
        0x165667B19E3779F9ULL, 0x27D4EB2F165667C5ULL,
    };
    std::uint64_t h = x * muls[bank];
    return h ^ (h >> 29);
}

} // namespace

GskewPredictor::GskewPredictor(const GskewConfig &cfg) : cfg_(cfg)
{
    assert(cfg_.entriesPerBank && !(cfg_.entriesPerBank &
                                    (cfg_.entriesPerBank - 1)));
    histMask_ = (1ULL << cfg_.historyBits) - 1;
    shortMask_ = (1ULL << cfg_.shortHistoryBits) - 1;
    bankMask_ = cfg_.entriesPerBank - 1;
    for (auto &bank : banks_)
        bank.assign(cfg_.entriesPerBank,
                    SatCounter(cfg_.counterBits,
                               std::uint8_t(1u << (cfg_.counterBits - 1))));
}

std::size_t
GskewPredictor::index(unsigned bank, Addr pc, std::uint64_t ghist) const
{
    std::uint64_t word = pc / kInstBytes;
    std::uint64_t hist;
    switch (bank) {
      case BIM:
        hist = 0;
        break;
      case G0:
      case META:
        // The meta predictor uses a short history (Seznec et al.):
        // a full-history meta fragments its "trust the bimodal"
        // evidence across patterns and never converges on weakly
        // biased branches.
        hist = ghist & ((1ULL << cfg_.shortHistoryBits) - 1);
        break;
      default: // G1 uses the full history
        hist = ghist & ((1ULL << cfg_.historyBits) - 1);
        break;
    }
    std::uint64_t x = word ^ (hist << 18) ^ hist;
    return skewHash(bank, x) & (cfg_.entriesPerBank - 1);
}

void
GskewPredictor::indices(Addr pc, std::uint64_t ghist,
                        std::size_t idx[4]) const
{
    const std::uint64_t word = pc / kInstBytes;
    const std::uint64_t shist = ghist & shortMask_;
    const std::uint64_t fhist = ghist & histMask_;
    const std::uint64_t x_bim = word;
    const std::uint64_t x_short = word ^ (shist << 18) ^ shist;
    const std::uint64_t x_full = word ^ (fhist << 18) ^ fhist;
    // Four independent multiply-xor hashes: no data dependences, so
    // the compiler can schedule (or vectorize) them together.
    idx[BIM] = skewHash(BIM, x_bim) & bankMask_;
    idx[G0] = skewHash(G0, x_short) & bankMask_;
    idx[G1] = skewHash(G1, x_full) & bankMask_;
    idx[META] = skewHash(META, x_short) & bankMask_;
}

bool
GskewPredictor::predict(Addr pc, std::uint64_t ghist)
{
    std::size_t idx[4];
    indices(pc, ghist, idx);
    bool bim = banks_[BIM][idx[BIM]].taken();
    bool g0 = banks_[G0][idx[G0]].taken();
    bool g1 = banks_[G1][idx[G1]].taken();
    bool meta = banks_[META][idx[META]].taken();

    bool eskew = (int(bim) + int(g0) + int(g1)) >= 2;
    return meta ? eskew : bim;
}

void
GskewPredictor::update(Addr pc, std::uint64_t ghist, bool taken)
{
    std::size_t idx[4];
    indices(pc, ghist, idx);
    std::size_t i_bim = idx[BIM];
    std::size_t i_g0 = idx[G0];
    std::size_t i_g1 = idx[G1];
    std::size_t i_meta = idx[META];

    bool bim = banks_[BIM][i_bim].taken();
    bool g0 = banks_[G0][i_g0].taken();
    bool g1 = banks_[G1][i_g1].taken();
    bool meta = banks_[META][i_meta].taken();

    bool eskew = (int(bim) + int(g0) + int(g1)) >= 2;
    bool used_eskew = meta;
    bool pred = used_eskew ? eskew : bim;

    // META trains whenever its two inputs disagree.
    if (bim != eskew)
        banks_[META][i_meta].update(eskew == taken);

    if (pred == taken) {
        // Partial update: only strengthen the banks that supplied
        // the (correct) prediction and agreed with the outcome.
        if (used_eskew) {
            if (bim == taken)
                banks_[BIM][i_bim].update(taken);
            if (g0 == taken)
                banks_[G0][i_g0].update(taken);
            if (g1 == taken)
                banks_[G1][i_g1].update(taken);
        } else {
            banks_[BIM][i_bim].update(taken);
        }
    } else {
        // On a misprediction every bank is retrained.
        banks_[BIM][i_bim].update(taken);
        banks_[G0][i_g0].update(taken);
        banks_[G1][i_g1].update(taken);
    }
}

std::uint64_t
GskewPredictor::storageBits() const
{
    return 4ULL * cfg_.entriesPerBank * cfg_.counterBits;
}

} // namespace sfetch

#include "bpred/btb.hh"

#include <cassert>

namespace sfetch
{

Btb::Btb(const BtbConfig &cfg) : cfg_(cfg)
{
    assert(cfg_.entries % cfg_.assoc == 0);
    numSets_ = cfg_.entries / cfg_.assoc;
    assert(numSets_ && !(numSets_ & (numSets_ - 1)));
    ways_.resize(cfg_.entries);
}

std::size_t
Btb::setIndex(Addr pc) const
{
    return (pc / kInstBytes) & (numSets_ - 1);
}

Addr
Btb::tagOf(Addr pc) const
{
    return (pc / kInstBytes) / numSets_;
}

BtbEntry
Btb::lookup(Addr pc)
{
    ++lookups_;
    ++tick_;
    const std::size_t base = setIndex(pc) * cfg_.assoc;
    const Addr tag = tagOf(pc);
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = tick_;
            ++hits_;
            return BtbEntry{true, way.target, way.type};
        }
    }
    return BtbEntry{};
}

void
Btb::update(Addr pc, Addr target, BranchType type)
{
    ++tick_;
    const std::size_t base = setIndex(pc) * cfg_.assoc;
    const Addr tag = tagOf(pc);

    std::size_t victim = base;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.target = target;
            way.type = type;
            way.lastUse = tick_;
            return;
        }
        std::uint64_t age = way.valid ? way.lastUse : 0;
        if (!way.valid) {
            victim = base + w;
            oldest = 0;
        } else if (age < oldest) {
            oldest = age;
            victim = base + w;
        }
    }

    Way &way = ways_[victim];
    way.valid = true;
    way.tag = tag;
    way.target = target;
    way.type = type;
    way.lastUse = tick_;
}

} // namespace sfetch

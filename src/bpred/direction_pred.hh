/**
 * @file
 * Conditional branch direction predictors: the common interface plus
 * the classic table-based family (bimodal, gshare, two-level local).
 * The EV8's 2bcgskew and the FTB's perceptron live in their own
 * headers.
 */

#ifndef SFETCH_BPRED_DIRECTION_PRED_HH
#define SFETCH_BPRED_DIRECTION_PRED_HH

#include <cstdint>
#include <vector>

#include "util/sat_counter.hh"
#include "util/types.hh"

namespace sfetch
{

/**
 * Direction predictor interface. The caller supplies the speculative
 * global history at both predict and update time; predictors with
 * private state (local histories, perceptron weights) manage it
 * internally and update it non-speculatively at update() time.
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the branch at @p pc under global history @p ghist. */
    virtual bool predict(Addr pc, std::uint64_t ghist) = 0;

    /**
     * Train with the resolved outcome.
     * @param pc Branch address.
     * @param ghist Global history *at prediction time*.
     * @param taken Actual outcome.
     */
    virtual void update(Addr pc, std::uint64_t ghist, bool taken) = 0;

    /** Storage budget in bits (for Table 2 style accounting). */
    virtual std::uint64_t storageBits() const = 0;
};

/** PC-indexed 2-bit counter table. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(std::size_t entries = 4096,
                              unsigned counter_bits = 2);

    bool predict(Addr pc, std::uint64_t ghist) override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::uint64_t storageBits() const override;

  private:
    std::size_t index(Addr pc) const;
    std::vector<SatCounter> table_;
};

/** Gshare: pc XOR global history indexing. */
class GsharePredictor : public DirectionPredictor
{
  public:
    explicit GsharePredictor(std::size_t entries = 16384,
                             unsigned history_bits = 12,
                             unsigned counter_bits = 2);

    bool predict(Addr pc, std::uint64_t ghist) override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::uint64_t storageBits() const override;

  private:
    std::size_t index(Addr pc, std::uint64_t ghist) const;
    std::vector<SatCounter> table_;
    unsigned historyBits_;
};

/** Two-level local predictor (per-PC history into a pattern table). */
class LocalPredictor : public DirectionPredictor
{
  public:
    LocalPredictor(std::size_t history_entries = 1024,
                   unsigned local_bits = 10,
                   std::size_t pattern_entries = 1024,
                   unsigned counter_bits = 2);

    bool predict(Addr pc, std::uint64_t ghist) override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::uint64_t storageBits() const override;

  private:
    std::vector<std::uint32_t> localHist_;
    std::vector<SatCounter> pattern_;
    unsigned localBits_;
};

} // namespace sfetch

#endif // SFETCH_BPRED_DIRECTION_PRED_HH

/**
 * @file
 * Perceptron branch predictor (Jimenez & Lin, HPCA 2001), in the
 * global+local configuration the paper pairs with the FTB front end:
 * 512 perceptrons, 40 bits of global history, and a 4096-entry table
 * of 14-bit local histories.
 */

#ifndef SFETCH_BPRED_PERCEPTRON_HH
#define SFETCH_BPRED_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "bpred/direction_pred.hh"

namespace sfetch
{

/** Configuration of the perceptron predictor. */
struct PerceptronConfig
{
    std::size_t numPerceptrons = 512;  //!< paper: 512 perceptrons
    unsigned globalBits = 40;          //!< paper: 40-bit global history
    std::size_t localEntries = 4096;   //!< paper: 4096 local histories
    unsigned localBits = 14;           //!< paper: 14-bit local history
    int weightMax = 127;               //!< int8 weights
};

/** Global+local perceptron predictor. */
class PerceptronPredictor : public DirectionPredictor
{
  public:
    explicit PerceptronPredictor(
        const PerceptronConfig &cfg = PerceptronConfig{});

    bool predict(Addr pc, std::uint64_t ghist) override;
    void update(Addr pc, std::uint64_t ghist, bool taken) override;
    std::uint64_t storageBits() const override;

    /** Training threshold theta = 1.93 * h + 14 (Jimenez & Lin). */
    int threshold() const { return theta_; }

  private:
    /** Dot product of the selected perceptron with the histories. */
    int output(Addr pc, std::uint64_t ghist) const;

    std::size_t pcIndex(Addr pc) const;
    std::size_t localIndex(Addr pc) const;

    PerceptronConfig cfg_;
    int theta_;
    /** numPerceptrons rows x (1 + globalBits + localBits) weights. */
    std::vector<std::int16_t> weights_;
    std::vector<std::uint32_t> localHist_;
    unsigned rowLen_;
    // Index masks for the power-of-two table sizes the paper uses
    // (the modulo fallback only fires for odd configurations).
    std::size_t pcMask_ = 0;
    std::size_t localMask_ = 0;
    bool pow2Tables_ = false;
};

} // namespace sfetch

#endif // SFETCH_BPRED_PERCEPTRON_HH

/**
 * @file
 * Typed engine parameter sets. A ParamSpec declares the parameters an
 * engine accepts (name, type, default, documentation); a ParamSet is
 * a key->value store validated against one spec. Unknown keys and
 * type mismatches are hard errors with messages that list what the
 * engine actually takes, so `--arch stream:ftqq=8` fails loudly
 * instead of silently running the default configuration.
 *
 * ParamSets round-trip through the spec grammar used by the shared
 * CLI (`key=v,key=v`, see sim/config.hh for the full
 * `arch:key=v,...` form) and through the JSON emitted by
 * ResultSet::toJson(). The canonical text form lists only parameters
 * whose effective value differs from the declared default, in
 * declaration order.
 */

#ifndef SFETCH_SIM_PARAM_SET_HH
#define SFETCH_SIM_PARAM_SET_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sfetch
{

/** Value types a parameter can declare. */
enum class ParamType
{
    Int,
    Bool,
    String,
};

/** One declared parameter: type, default, and documentation. */
struct ParamDecl
{
    std::string key;
    ParamType type = ParamType::Int;
    std::string doc;
    std::int64_t defInt = 0;
    bool defBool = false;
    std::string defString;
    /** Lower bound for Int parameters (all current ones are sizes). */
    std::int64_t minInt = 0;
};

/**
 * The declared parameter surface of one engine. Declaration order is
 * the canonical emission order. Owned by the engine's registry
 * descriptor and outlives every ParamSet bound to it.
 */
class ParamSpec
{
  public:
    ParamSpec &intParam(const std::string &key, std::int64_t def,
                        const std::string &doc,
                        std::int64_t min = 0);
    ParamSpec &boolParam(const std::string &key, bool def,
                         const std::string &doc);
    ParamSpec &stringParam(const std::string &key,
                           const std::string &def,
                           const std::string &doc);

    /** The declaration for @p key, or nullptr when not declared. */
    const ParamDecl *find(const std::string &key) const;

    const std::vector<ParamDecl> &decls() const { return decls_; }
    bool empty() const { return decls_.empty(); }

    /** Comma-separated list of declared keys (for error messages). */
    std::string keyList() const;

  private:
    ParamSpec &add(ParamDecl decl);

    std::vector<ParamDecl> decls_;
};

/**
 * A parameter assignment validated against one ParamSpec. Getters
 * return the set value or the declared default; every accessor
 * throws std::invalid_argument for keys the spec does not declare or
 * for type mismatches.
 */
class ParamSet
{
  public:
    /** An unbound set over an empty spec (accepts no keys). */
    ParamSet();

    /** Bind to @p spec, which must outlive this set. */
    explicit ParamSet(const ParamSpec *spec);

    const ParamSpec &spec() const { return *spec_; }

    std::int64_t getInt(const std::string &key) const;
    bool getBool(const std::string &key) const;
    const std::string &getString(const std::string &key) const;

    void setInt(const std::string &key, std::int64_t value);
    void setBool(const std::string &key, bool value);
    void setString(const std::string &key, const std::string &value);

    /**
     * Parse @p text according to the declared type of @p key and set
     * it: integers in base 10, bools as 0/1/true/false. Throws
     * std::invalid_argument on unknown keys or unparseable text.
     */
    void set(const std::string &key, const std::string &text);

    /** True when the effective value of @p key is its default. */
    bool isDefault(const std::string &key) const;

    /** Drop all explicit assignments (back to all-defaults). */
    void clear() { values_.clear(); }

    /**
     * Canonical text form: `key=v,key=v` over the non-default
     * parameters in declaration order; empty when all parameters are
     * at their defaults. Bools render as 1/0.
     */
    std::string toSpecText() const;

    /** Apply a `key=v,key=v` fragment (inverse of toSpecText()). */
    void applySpecText(const std::string &text);

    /**
     * JSON object of the non-default parameters, `{}` when none.
     * Ints and bools render natively; string values need no
     * escaping because setString() rejects delimiter, quote and
     * control characters (keeping the spec grammar and JSON
     * round-trips exact).
     */
    std::string toJson() const;

  private:
    struct Value
    {
        std::int64_t i = 0;
        bool b = false;
        std::string s;
    };

    const ParamDecl &require(const std::string &key,
                             ParamType type) const;
    [[noreturn]] void failUnknown(const std::string &key) const;

    const ParamSpec *spec_;
    std::map<std::string, Value> values_;

    friend bool operator==(const ParamSet &a, const ParamSet &b);
};

/**
 * Split a comma-separated list of `token[:key=v,...]` specs into one
 * string per spec: an item is a continuation of the previous spec's
 * parameter list when it contains '=' before any ':', so
 * `ev8,stream:ftq=8,single_table=1` is two specs. Shared by the
 * --arch and --bench grammars. Throws std::invalid_argument on an
 * empty list or a leading continuation item.
 */
std::vector<std::string> splitSpecList(const std::string &text);

/** Effective-value equality over the (shared) spec. */
bool operator==(const ParamSet &a, const ParamSet &b);
inline bool
operator!=(const ParamSet &a, const ParamSet &b)
{
    return !(a == b);
}

} // namespace sfetch

#endif // SFETCH_SIM_PARAM_SET_HH

/**
 * @file
 * Structured sweep results: one ResultRow per (benchmark, SimConfig)
 * simulation, collected into a ResultSet with table, CSV, and JSON
 * emitters. Benches aggregate their paper tables from a ResultSet
 * instead of ad-hoc printf loops, and `--format csv|json` dumps the
 * raw rows for offline analysis. CSV and JSON both round-trip the
 * configuration — rows carry the canonical engine spec string
 * (`arch:key=v,...`) plus the engine-agnostic knobs — and the
 * counter fields; engine-internal stats ride along in JSON only.
 */

#ifndef SFETCH_SIM_RESULTS_HH
#define SFETCH_SIM_RESULTS_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/stats.hh"

namespace sfetch
{

/** Output selector for the shared --format option. */
enum class OutputFormat
{
    Table, //!< human-readable aggregate table (the default)
    Csv,   //!< raw rows, one CSV line each
    Json,  //!< raw rows as a JSON document
};

/** Parse "table"/"csv"/"json"; throws std::invalid_argument. */
OutputFormat parseFormat(const std::string &token);

/** Inverse of parseFormat(). */
std::string formatName(OutputFormat fmt);

/** One completed simulation run. */
struct ResultRow
{
    std::string bench;
    SimConfig cfg;
    SimStats stats;
    double wallSeconds = 0.0; //!< host wall-clock of this run
};

bool operator==(const ResultRow &a, const ResultRow &b);

/**
 * The single-line JSON object for one row — exactly the element
 * toJson() places in its "rows" array (sfetchd streams these as they
 * complete without re-implementing the schema). Concatenating
 * rowJson() outputs into a `{"wall_seconds": s, "rows": [...]}`
 * envelope yields a document fromJson() parses identically.
 */
std::string rowJson(const ResultRow &row);

/** An ordered collection of runs plus sweep-level metadata. */
class ResultSet
{
  public:
    void add(ResultRow row) { rows_.push_back(std::move(row)); }

    const std::vector<ResultRow> &rows() const { return rows_; }
    std::size_t size() const { return rows_.size(); }
    bool empty() const { return rows_.empty(); }
    const ResultRow &at(std::size_t i) const { return rows_.at(i); }

    /** Host wall-clock of the whole sweep (set by the driver). */
    double wallSeconds() const { return wallSeconds_; }
    void setWallSeconds(double s) { wallSeconds_ = s; }

    /** Rows satisfying @p pred, in order. */
    ResultSet
    where(const std::function<bool(const ResultRow &)> &pred) const;

    /** Extract one value per row. */
    std::vector<double>
    collect(const std::function<double(const ResultRow &)> &get) const;

    /** Extract one value per row satisfying @p pred. */
    std::vector<double>
    collect(const std::function<bool(const ResultRow &)> &pred,
            const std::function<double(const ResultRow &)> &get) const;

    /** Suite-level aggregate of @p get over rows matching @p pred. */
    double mean(MeanKind kind,
                const std::function<bool(const ResultRow &)> &pred,
                const std::function<double(const ResultRow &)> &get)
        const;

    /** Generic per-run table (bench/arch/width/layout/IPC/...). */
    std::string toTable() const;

    /** One header line plus one line per row. */
    std::string toCsv() const;

    /** A single JSON document; includes engine-internal stats. */
    std::string toJson() const;

    /** sfetch::rowJson() for row @p i (bounds-checked). */
    std::string rowJson(std::size_t i) const;

    /** Parse toCsv() output. Throws std::runtime_error on malformed
     * input. Engine stats are not represented in CSV. */
    static ResultSet fromCsv(const std::string &text);

    /** Parse toJson() output. Throws std::runtime_error. */
    static ResultSet fromJson(const std::string &text);

  private:
    std::vector<ResultRow> rows_;
    double wallSeconds_ = 0.0;
};

/**
 * Shared tail of every bench main(): when @p fmt is csv or json,
 * print the raw rows to stdout and return true (the caller skips its
 * aggregate table); table format returns false.
 */
bool emitMachineReadable(const ResultSet &rs, OutputFormat fmt);

} // namespace sfetch

#endif // SFETCH_SIM_RESULTS_HH

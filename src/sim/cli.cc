#include "sim/cli.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sim/engine_registry.hh"
#include "workload/workload_registry.hh"

namespace sfetch
{

std::vector<SimConfig>
CliOptions::archsOrPaperSet() const
{
    return archs.empty() ? paperArchConfigs() : archs;
}

CliParser::CliParser(std::string prog, std::string summary)
    : prog_(std::move(prog)), summary_(std::move(summary))
{
    addFlag("--help", "show this help and exit", [this] {
        std::fputs(usage().c_str(), stdout);
        std::exit(0);
    });
}

std::uint64_t
CliParser::parseU64(const std::string &text)
{
    // strtoull alone is not enough: it accepts leading whitespace
    // and a '-' sign (negating into a huge value), stops silently at
    // the first non-digit ("5x" -> 5), and wraps on overflow unless
    // errno is checked. Require pure digits and check ERANGE.
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument("bad number '" + text + "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        throw std::invalid_argument("bad number '" + text + "'");
    if (errno == ERANGE)
        throw std::invalid_argument("number out of range '" + text +
                                    "'");
    return v;
}

std::vector<unsigned>
CliParser::parseUnsignedList(const std::string &text)
{
    std::vector<unsigned> out;
    std::stringstream ss(text);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty())
            continue;
        const std::uint64_t v = parseU64(tok);
        if (v > std::numeric_limits<unsigned>::max())
            throw std::invalid_argument("number out of range '" +
                                        tok + "'");
        out.push_back(static_cast<unsigned>(v));
    }
    if (out.empty())
        throw std::invalid_argument("empty list '" + text + "'");
    return out;
}

std::vector<std::string>
CliParser::parseNameList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    if (out.empty())
        throw std::invalid_argument("empty list '" + text + "'");
    return out;
}

std::vector<std::string>
resolveBenches(const std::vector<std::string> &requested)
{
    if (requested.empty())
        return suiteNames();
    if (requested.size() == 1 && requested[0] == "all")
        return suiteNames();
    std::vector<std::string> out;
    out.reserve(requested.size());
    for (const std::string &spec : requested)
        out.push_back(canonicalBenchSpec(spec)); // throws on unknown
    return out;
}

std::string
requireSingleBench(const CliOptions &opts, const char *prog)
{
    if (opts.benches.size() != 1) {
        std::fprintf(stderr,
                     "%s: takes exactly one benchmark, got %zu "
                     "(--bench with a single name)\n",
                     prog, opts.benches.size());
        std::exit(2);
    }
    return opts.benches.front();
}

void
CliParser::addStandard(CliOptions *opts, unsigned mask)
{
    if (mask & kInsts)
        addOption("--insts", "N", "measured instructions per run",
                  [opts](const std::string &v) {
                      opts->insts = parseU64(v);
                      if (opts->insts == 0)
                          throw std::invalid_argument(
                              "--insts must be positive");
                  });
    if (mask & kWarmup)
        addOption("--warmup", "N",
                  "warmup instructions (default: insts/5)",
                  [opts](const std::string &v) {
                      opts->warmupInsts = parseU64(v);
                      opts->warmupSet = true;
                  });
    if (mask & kWidths)
        addOption("--widths", "W,W,...",
                  "comma-separated pipe widths (2, 4, 8)",
                  [opts](const std::string &v) {
                      opts->widths = parseUnsignedList(v);
                  });
    if (mask & kBench) {
        addOption("--bench", "SPEC[,SPEC...]",
                  "workload specs: suite names, 'all', or "
                  "`family[:key=v,...]` (see --list-benches)",
                  [opts](const std::string &v) {
                      // parseBenchSpecList canonicalizes and
                      // validates (bad specs die cleanly here);
                      // the binary's resolveBenches() call expands
                      // 'all' and empty defaults.
                      opts->benches = parseBenchSpecList(v);
                  });
        addFlag("--list-benches",
                "list the registered workload families, their "
                "parameters and the suite presets, then exit",
                [] {
                    std::fputs(WorkloadRegistry::instance()
                                   .listText()
                                   .c_str(),
                               stdout);
                    std::exit(0);
                });
    }
    if (mask & kArena)
        addFlag("--no-arena",
                "disable committed-path arena sharing: every sweep "
                "point regenerates its oracle stream live (slower; "
                "for measurement baselines and debugging — results "
                "are bit-identical either way)",
                [opts] { opts->arena = false; });
    if (mask & kJobs)
        addOption("--jobs", "N",
                  "worker threads (default: all hardware threads)",
                  [opts](const std::string &v) {
                      const std::uint64_t n = parseU64(v);
                      if (n == 0 ||
                          n > std::numeric_limits<unsigned>::max())
                          throw std::invalid_argument(
                              "--jobs must be a positive thread "
                              "count");
                      opts->jobs = static_cast<unsigned>(n);
                  });
    if (mask & kFormat)
        addOption("--format", "table|csv|json",
                  "output format (default: table)",
                  [opts](const std::string &v) {
                      opts->format = parseFormat(v);
                  });
    if (mask & kArch) {
        addOption("--arch", "SPEC[,SPEC...]",
                  "engine specs `arch[:key=v,...]`, e.g. "
                  "ev8,stream:ftq=8 (see --list-archs)",
                  [opts](const std::string &v) {
                      opts->archs = parseArchSpecList(v);
                  });
        addFlag("--list-archs",
                "list the registered fetch engines and their "
                "parameters, then exit",
                [] {
                    std::fputs(
                        EngineRegistry::instance().listText().c_str(),
                        stdout);
                    std::exit(0);
                });
    }
}

void
CliParser::addOption(const std::string &name,
                     const std::string &metavar,
                     const std::string &help,
                     std::function<void(const std::string &)> parse)
{
    options_.push_back({name, metavar, help, std::move(parse)});
}

void
CliParser::addFlag(const std::string &name, const std::string &help,
                   std::function<void()> set)
{
    options_.push_back({name, "", help,
                        [set = std::move(set)](const std::string &) {
                            set();
                        }});
}

void
CliParser::onPositional(const std::string &metavar,
                        const std::string &help,
                        std::function<void(const std::string &)> parse)
{
    positionalMeta_ = metavar;
    positionalHelp_ = help;
    positional_ = std::move(parse);
}

const CliParser::Option *
CliParser::findOption(const std::string &name) const
{
    for (const Option &opt : options_)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

std::string
CliParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << prog_ << " [options]";
    if (positional_)
        os << " " << positionalMeta_;
    os << "\n" << summary_ << "\n\noptions:\n";
    for (const Option &opt : options_) {
        std::string lhs = "  " + opt.name;
        if (!opt.metavar.empty())
            lhs += " " + opt.metavar;
        os << lhs;
        if (lhs.size() < 28)
            os << std::string(28 - lhs.size(), ' ');
        else
            os << "\n" << std::string(28, ' ');
        os << opt.help << "\n";
    }
    if (positional_)
        os << "  " << positionalMeta_ << ": " << positionalHelp_
           << "\n";
    return os.str();
}

void
CliParser::parseOrExit(int argc, char **argv)
{
    auto die = [this](const std::string &msg) {
        std::fprintf(stderr, "%s: %s\n%s", prog_.c_str(), msg.c_str(),
                     usage().c_str());
        std::exit(2);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
            const Option *opt = findOption(arg);
            if (!opt)
                die("unknown option '" + arg + "'");
            std::string value;
            if (!opt->metavar.empty()) {
                if (i + 1 >= argc)
                    die("option '" + arg + "' needs a value");
                value = argv[++i];
            }
            try {
                opt->parse(value);
            } catch (const std::exception &e) {
                die(arg + ": " + e.what());
            }
        } else if (arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        } else if (positional_) {
            try {
                positional_(arg);
            } catch (const std::exception &e) {
                die("'" + arg + "': " + e.what());
            }
        } else {
            die("unexpected argument '" + arg + "'");
        }
    }
}

} // namespace sfetch

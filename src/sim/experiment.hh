/**
 * @file
 * Experiment harness: builds the machine configurations of Table 2,
 * instantiates any registered fetch architecture over any suite
 * workload (base or optimized layout, any pipe width), runs the
 * simulation, and aggregates suite-level results. All bench binaries
 * and examples go through this API.
 *
 * The engine surface lives in sim/config.hh (SimConfig over the
 * EngineRegistry). The ArchKind enum and RunConfig struct below are
 * the legacy closed API, kept as a thin conversion shim: they cover
 * exactly the paper's four architectures and the historical ablation
 * flags, and translate 1:1 into SimConfig parameter sets.
 */

#ifndef SFETCH_SIM_EXPERIMENT_HH
#define SFETCH_SIM_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "layout/oracle_arena.hh"
#include "pipeline/processor.hh"
#include "sim/config.hh"
#include "workload/profile.hh"
#include "workload/suite.hh"
#include "workload/trace_io.hh"
#include "workload/workload_registry.hh"

namespace sfetch
{

/**
 * Committed-path margin beyond (insts + warmup) that any pre-decoded
 * or recorded oracle must cover: the oracle is consumed once per
 * correct-path *fetched* instruction, which runs ahead of commit by
 * at most the fetch buffer, the ROB, and one instruction of
 * lookahead. 4096 covers the largest configuration with an order of
 * magnitude to spare.
 */
constexpr InstCount kFetchAheadMargin = 4096;

/**
 * The four fetch architectures of the paper's evaluation (legacy
 * shim; registry tokens are the open-ended replacement).
 */
enum class ArchKind
{
    Ev8,     //!< EV8 + 2bcgskew
    Ftb,     //!< FTB + perceptron
    Stream,  //!< the paper's stream fetch architecture
    Trace,   //!< trace cache + next trace predictor
};

/** Display name matching the paper's figures (from the registry). */
std::string archName(ArchKind kind);

/** Stable machine-readable token: "ev8", "ftb", "stream", "trace". */
std::string archToken(ArchKind kind);

/** Inverse of archToken(); accepts the registry aliases. Only the
 * four paper architectures have an ArchKind; use the registry for
 * anything else. */
ArchKind parseArch(const std::string &token);

/** All four paper architectures in plotting order. */
const std::vector<ArchKind> &allArchs();

/**
 * One fully-specified experiment, legacy form. The engine-specific
 * fields correspond to engine parameters: lineBytesOverride ->
 * `line`, ftqEntriesOverride -> `ftq`, streamSingleTable ->
 * `stream:single_table`, streamNoHysteresis ->
 * `stream:no_hysteresis`, tracePartialMatching ->
 * `trace:partial_match`.
 */
struct RunConfig
{
    ArchKind arch = ArchKind::Stream;
    unsigned width = 8;          //!< pipe width: 2, 4, or 8
    bool optimizedLayout = true; //!< spike-style layout vs baseline
    InstCount insts = 2'000'000; //!< measured instructions
    InstCount warmupInsts = 300'000;
    /** Overridable i-cache line size; 0 = 4x width (Table 2). */
    unsigned lineBytesOverride = 0;
    /** Overridable FTQ depth; 0 = default (4). */
    std::size_t ftqEntriesOverride = 0;
    /** Stream-predictor ablation: disable the path-indexed table. */
    bool streamSingleTable = false;
    /** Stream-predictor ablation: 1-bit hysteresis-free counters. */
    bool streamNoHysteresis = false;
    /** Trace-cache ablation: enable partial matching (footnote 3). */
    bool tracePartialMatching = false;
};

bool operator==(const RunConfig &a, const RunConfig &b);
inline bool
operator!=(const RunConfig &a, const RunConfig &b)
{
    return !(a == b);
}

/**
 * Translate a legacy RunConfig into the equivalent SimConfig.
 * Guaranteed to produce bit-identical SimStats (asserted by
 * tests/test_config.cc).
 */
SimConfig toSimConfig(const RunConfig &cfg);

/**
 * A reusable placed workload: program + behaviour + both layouts.
 * Building one is moderately expensive (profiling run), so it is
 * built once per benchmark — normally via WorkloadCache — and shared
 * read-only across runs. All accessors are const; concurrent runs on
 * one PlacedWorkload are safe.
 */
class PlacedWorkload
{
  public:
    /**
     * @param bench_spec A suite preset name (gzip, ...) or a
     * workload-registry spec `family[:key=v,...]`; see
     * canonicalBenchSpec(). name() is the canonical form.
     */
    explicit PlacedWorkload(const std::string &bench_spec);

    const std::string &name() const { return name_; }
    const Program &program() const { return work_.program; }
    const WorkloadModel &model() const { return work_.model; }
    /** Train-input edge profile that drove the optimized layout. */
    const EdgeProfile &profile() const { return *profile_; }
    const CodeImage &baseImage() const { return *base_; }
    const CodeImage &optImage() const { return *opt_; }

    const CodeImage &
    image(bool optimized) const
    {
        return optimized ? *opt_ : *base_;
    }

    /**
     * Shared pre-decoded committed path for @p total_insts
     * instructions (measured + warmup + kFetchAheadMargin) on the
     * given layout, decoded with the `ref` seed every runOn() uses.
     * Built lazily, once, and cached per layout: concurrent callers
     * and later sweeps share one immutable arena. A request longer
     * than the cached arena rebuilds (the longer arena replaces the
     * shorter; outstanding references stay valid through the
     * shared_ptr). Thread-safe.
     */
    std::shared_ptr<const OracleArena>
    arena(bool optimized, InstCount total_insts) const;

    /**
     * The cached arena for the layout when one exists and already
     * covers @p total_insts; null otherwise (never builds).
     */
    std::shared_ptr<const OracleArena>
    cachedArena(bool optimized, InstCount total_insts) const;

    /**
     * Bytes held by this workload's cached per-layout arenas — the
     * dominant, budgetable share of its footprint (the ~28 MB/arena
     * formula; program + images are a few hundred KB). Feeds
     * WorkloadCache::bytesResident() and sfetchd's memory governor.
     */
    std::size_t arenaBytesResident() const;

    /**
     * Drop the cached arena references. Outstanding shared_ptrs
     * (e.g. a sweep currently replaying) keep their arenas alive and
     * valid; the memory is reclaimed when the last reference dies,
     * and later arena() calls decode afresh.
     */
    void dropArenas() const;

    /** Bytes of one layout's cached arena (0 when not decoded). */
    std::size_t arenaBytes(bool optimized) const;

    /**
     * Process-wide LRU stamp of the layout's cached arena: when it
     * was last decoded or handed out by arena()/cachedArena(). 0 when
     * not decoded. Drives arena-granular eviction
     * (WorkloadCache::evictArenaLru()).
     */
    std::uint64_t arenaLastUse(bool optimized) const;

    /**
     * Drop one layout's cached arena iff this cache slot is its only
     * owner — an arena some replay still holds is left alone.
     * Returns the bytes released (0 when absent or in use). The
     * other layout's arena is untouched: this is the governor's
     * surgical alternative to evicting a whole workload.
     */
    std::size_t evictArena(bool optimized) const;

  private:
    std::string name_;
    SyntheticWorkload work_;
    std::unique_ptr<EdgeProfile> profile_;
    std::unique_ptr<CodeImage> base_;
    std::unique_ptr<CodeImage> opt_;

    /** Lazily-built per-layout committed-path arenas ([0]=base). */
    mutable std::mutex arenaMu_;
    mutable std::shared_ptr<const OracleArena> arenas_[2];
    mutable std::uint64_t arenaUse_[2] = {0, 0}; //!< LRU stamps
};

/** Build the fetch engine for a legacy run (registry-backed). */
std::unique_ptr<FetchEngine> makeEngine(const RunConfig &cfg,
                                        const CodeImage &image,
                                        MemoryHierarchy *mem);

/**
 * Execution knobs for runOn() that are not part of the modelled
 * machine configuration.
 */
struct RunTuning
{
    /**
     * Run the batched replay core (bulk oracle verify, run-drained
     * commit/dispatch, SIMD meta scans). Off = the scalar reference
     * loop. Pure host-side choice: SimStats are bit-identical either
     * way (proven by the golden and differential suites).
     */
    bool batchedReplay = true;
    /**
     * Stop committing exactly at the instruction budget instead of
     * letting the final cycle's full commit overshoot by up to
     * width-1 instructions. committedInsts becomes exact, making
     * Minsts/s denominators comparable across rows; the trimmed
     * instructions commit a cycle later, so this is a (deterministic,
     * equally valid) variant run, not a bit-identical one. Default
     * off: the golden stats pin the overshooting counts.
     */
    bool exactInstStop = false;
};

/**
 * Run one experiment on a prepared workload. When @p replay is
 * non-null the committed path comes from the recorded trace instead
 * of live generation (the trace's bench spec must match the
 * workload; std::invalid_argument otherwise). A trace recorded via
 * recordBenchTrace() with the default seed replays bit-identically
 * to live generation on every engine.
 *
 * When @p arena is non-null the committed path *and* the data
 * address stream are replayed from the pre-decoded arena (which must
 * come from this workload's arena()/cachedArena(), i.e. be decoded
 * with the `ref` seed on the configured layout) — bit-identical to
 * live generation, pointer-bump cheap. Mutually exclusive with
 * @p replay. The sweep driver passes an arena automatically when
 * several points share one (workload, layout, run length).
 */
SimStats runOn(const PlacedWorkload &work, const SimConfig &cfg,
               const RecordedTrace *replay = nullptr,
               const OracleArena *arena = nullptr,
               const RunTuning &tuning = RunTuning{});
SimStats runOn(const PlacedWorkload &work, const RunConfig &cfg);

/**
 * Capture the committed control path of @p work for a run of
 * @p insts measured + @p warmup instructions, with enough margin
 * for the processor's fetch-ahead on any engine. @p seed defaults
 * to the `ref` input every runOn() simulation uses.
 */
RecordedTrace recordBenchTrace(const PlacedWorkload &work,
                               InstCount insts, InstCount warmup,
                               std::uint64_t seed = kRefSeed);

/** Convenience: prepare the workload and run. */
SimStats runBenchmark(const std::string &bench_name,
                      const SimConfig &cfg);
SimStats runBenchmark(const std::string &bench_name,
                      const RunConfig &cfg);

} // namespace sfetch

#endif // SFETCH_SIM_EXPERIMENT_HH

/**
 * @file
 * Shared command-line parsing for the bench and example binaries,
 * replacing the argv loops that used to be copy-pasted into each
 * main(). Binaries declare which of the standard sweep options they
 * take (--insts, --widths, --bench, --jobs, --format, --warmup) and
 * may register binary-specific options and positional arguments on
 * top; --help and error reporting come for free.
 */

#ifndef SFETCH_SIM_CLI_HH
#define SFETCH_SIM_CLI_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/results.hh"

namespace sfetch
{

/** Values of the standard sweep options after parsing. */
struct CliOptions
{
    InstCount insts = 1'000'000;
    /** Meaningful only when warmupSet; benches default to insts/5. */
    InstCount warmupInsts = 0;
    bool warmupSet = false;
    std::vector<unsigned> widths;       //!< from --widths
    std::vector<std::string> benches;   //!< default: whole suite
    /** Engine specs from --arch; empty = binary default. */
    std::vector<SimConfig> archs;
    unsigned jobs = 0;                  //!< 0 = hardware_concurrency
    OutputFormat format = OutputFormat::Table;
    /**
     * Committed-path arena sharing in the sweep driver (cleared by
     * --no-arena; binaries apply it via SweepDriver::setArenaMode).
     */
    bool arena = true;

    /** Warmup to use for a measured run of @p n instructions. */
    InstCount
    warmupFor(InstCount n) const
    {
        return warmupSet ? warmupInsts : n / 5;
    }

    /** The --arch selection, or the paper's four-engine set. */
    std::vector<SimConfig> archsOrPaperSet() const;

    /**
     * Stamp the engine-agnostic sweep knobs (insts, warmup, layout,
     * and width when nonzero) onto a copy of @p base.
     */
    SimConfig
    stamped(const SimConfig &base, unsigned width = 0,
            bool optimized_layout = true) const
    {
        SimConfig cfg = base;
        if (width)
            cfg.width = width;
        cfg.optimizedLayout = optimized_layout;
        cfg.insts = insts;
        cfg.warmupInsts = warmupFor(insts);
        return cfg;
    }
};

class CliParser
{
  public:
    /** Bitmask naming the standard options a binary accepts. */
    enum : unsigned
    {
        kInsts = 1u << 0,
        kWidths = 1u << 1,
        kBench = 1u << 2,
        kJobs = 1u << 3,
        kFormat = 1u << 4,
        kWarmup = 1u << 5,
        /** --arch engine-spec list + --list-archs. */
        kArch = 1u << 6,
        /** --no-arena: force per-point live oracle generation. */
        kArena = 1u << 7,
        /** The usual sweep-binary set. */
        kSweep = kInsts | kBench | kJobs | kFormat | kArch | kArena,
    };

    CliParser(std::string prog, std::string summary);

    /** Register the standard options in @p mask, writing into @p opts. */
    void addStandard(CliOptions *opts, unsigned mask);

    /** Register a binary-specific value option (--name METAVAR). */
    void addOption(const std::string &name, const std::string &metavar,
                   const std::string &help,
                   std::function<void(const std::string &)> parse);

    /** Register a binary-specific boolean flag (--name). */
    void addFlag(const std::string &name, const std::string &help,
                 std::function<void()> set);

    /**
     * Accept bare (non --option) arguments; @p parse is called once
     * per positional in order. Without this, positionals are errors.
     */
    void onPositional(const std::string &metavar,
                      const std::string &help,
                      std::function<void(const std::string &)> parse);

    /**
     * Parse the command line. Prints usage and exits 0 on --help;
     * prints the error and usage to stderr and exits 2 on bad input.
     */
    void parseOrExit(int argc, char **argv);

    std::string usage() const;

    // Shared token parsers (also used by binaries directly).
    /**
     * Strict decimal parse: the whole of @p text must be digits and
     * fit in 64 bits. Throws std::invalid_argument on empty text,
     * signs, trailing garbage ("5x"), or overflow — never silently
     * truncates the way a bare strtoull(.., nullptr, ..) call does.
     */
    static std::uint64_t parseU64(const std::string &text);
    static std::vector<unsigned>
    parseUnsignedList(const std::string &text);
    static std::vector<std::string>
    parseNameList(const std::string &text);

  private:
    struct Option
    {
        std::string name;    //!< including the leading "--"
        std::string metavar; //!< empty for flags
        std::string help;
        std::function<void(const std::string &)> parse;
    };

    const Option *findOption(const std::string &name) const;

    std::string prog_;
    std::string summary_;
    std::vector<Option> options_;
    std::string positionalMeta_;
    std::string positionalHelp_;
    std::function<void(const std::string &)> positional_;
};

/** Resolve --bench values: "all" (or empty) expands to the suite. */
std::vector<std::string>
resolveBenches(const std::vector<std::string> &requested);

/**
 * For binaries that study exactly one benchmark: return the single
 * requested name, or exit 2 with an error when --bench named several
 * (or "all").
 */
std::string
requireSingleBench(const CliOptions &opts, const char *prog);

} // namespace sfetch

#endif // SFETCH_SIM_CLI_HH

#include "sim/engine_registry.hh"

#include <sstream>
#include <stdexcept>

namespace sfetch
{

EngineRegistry::EngineRegistry()
{
    // Registration order is the paper's plotting order; seq (the
    // extensibility demonstrator) comes last.
    detail::registerEv8Engine(*this);
    detail::registerFtbEngine(*this);
    detail::registerStreamEngine(*this);
    detail::registerTraceEngine(*this);
    detail::registerSeqEngine(*this);
}

EngineRegistry &
EngineRegistry::instance()
{
    static EngineRegistry registry;
    return registry;
}

void
EngineRegistry::add(EngineDescriptor desc)
{
    if (desc.token.empty() || !desc.factory)
        throw std::logic_error(
            "EngineRegistry: descriptor needs a token and a factory");
    const ParamDecl *line = desc.params.find("line");
    if (!line || line->type != ParamType::Int)
        throw std::logic_error(
            "EngineRegistry: engine '" + desc.token +
            "' must declare an int 'line' parameter");
    auto taken = [this](const std::string &t) {
        return tryFind(t) != nullptr;
    };
    if (taken(desc.token))
        throw std::logic_error("EngineRegistry: duplicate token '" +
                               desc.token + "'");
    for (const std::string &alias : desc.aliases)
        if (taken(alias) || alias == desc.token)
            throw std::logic_error(
                "EngineRegistry: duplicate alias '" + alias + "'");
    engines_.push_back(
        std::make_unique<EngineDescriptor>(std::move(desc)));
}

const EngineDescriptor *
EngineRegistry::tryFind(const std::string &token) const
{
    for (const auto &e : engines_) {
        if (e->token == token)
            return e.get();
        for (const std::string &alias : e->aliases)
            if (alias == token)
                return e.get();
    }
    return nullptr;
}

const EngineDescriptor &
EngineRegistry::find(const std::string &token) const
{
    if (const EngineDescriptor *e = tryFind(token))
        return *e;
    std::ostringstream os;
    os << "unknown fetch engine '" << token << "' (registered:";
    for (const auto &e : engines_) {
        os << ' ' << e->token;
        for (const std::string &alias : e->aliases)
            os << '|' << alias;
    }
    os << "); see --list-archs";
    throw std::invalid_argument(os.str());
}

std::vector<std::string>
EngineRegistry::tokens() const
{
    std::vector<std::string> out;
    out.reserve(engines_.size());
    for (const auto &e : engines_)
        out.push_back(e->token);
    return out;
}

std::vector<std::string>
EngineRegistry::paperTokens() const
{
    std::vector<std::string> out;
    for (const auto &e : engines_)
        if (e->paperDefault)
            out.push_back(e->token);
    return out;
}

std::string
EngineRegistry::listText() const
{
    std::ostringstream os;
    os << "registered fetch engines "
          "(--arch TOKEN[:key=value,...]):\n";
    for (const auto &e : engines_) {
        os << "\n  " << e->token;
        for (const std::string &alias : e->aliases)
            os << " | " << alias;
        os << "  --  " << e->displayName;
        if (e->paperDefault)
            os << "  [paper]";
        os << "\n      " << e->summary << "\n";
        for (const ParamDecl &d : e->params.decls()) {
            std::string lhs = "        " + d.key;
            switch (d.type) {
              case ParamType::Int:
                lhs += " = " + std::to_string(d.defInt);
                break;
              case ParamType::Bool:
                lhs += d.defBool ? " = 1" : " = 0";
                break;
              case ParamType::String:
                lhs += " = " + d.defString;
                break;
            }
            os << lhs;
            if (lhs.size() < 28)
                os << std::string(28 - lhs.size(), ' ');
            else
                os << ' ';
            os << d.doc << "\n";
        }
    }
    return os.str();
}

} // namespace sfetch

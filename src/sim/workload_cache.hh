/**
 * @file
 * Process-wide registry of PlacedWorkloads. Building a workload is
 * moderately expensive (synthesis + a profiling run + two placements),
 * and every sweep wants the same eleven suite members, so the cache
 * constructs each exactly once per process and hands out shared
 * read-only references. Safe to use from many threads: concurrent
 * get() calls for the same name block on one build; calls for
 * different names build in parallel.
 */

#ifndef SFETCH_SIM_WORKLOAD_CACHE_HH
#define SFETCH_SIM_WORKLOAD_CACHE_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace sfetch
{

class WorkloadCache
{
  public:
    /** The process-wide instance used by the sweep driver. */
    static WorkloadCache &instance();

    /**
     * The cached workload for @p bench_spec (a suite preset name or
     * a workload-registry spec), building it on first use. Specs are
     * keyed by their *canonical* form — family token plus the
     * canonical ParamSet text — so two specs naming the same
     * parameters in different order or spelling share one build,
     * while specs differing in any workload parameter can never
     * alias one entry. The reference stays valid (and immutable) for
     * the cache's lifetime. Throws std::invalid_argument for unknown
     * names.
     */
    const PlacedWorkload &get(const std::string &bench_spec);

    /** True when @p bench_spec has already been built. */
    bool contains(const std::string &bench_spec) const;

    /** Number of workloads built so far. */
    std::size_t size() const;

    /** Drop all cached workloads (testing hook). */
    void clear();

  private:
    /**
     * Per-name slot. The once flag serializes the build; the map
     * mutex only guards slot creation, so distinct names can build
     * concurrently.
     */
    struct Slot
    {
        std::once_flag once;
        std::unique_ptr<PlacedWorkload> work;
    };

    Slot &slot(const std::string &bench_name);

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Slot>> slots_;
};

} // namespace sfetch

#endif // SFETCH_SIM_WORKLOAD_CACHE_HH

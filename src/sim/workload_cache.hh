/**
 * @file
 * Process-wide registry of PlacedWorkloads. Building a workload is
 * moderately expensive (synthesis + a profiling run + two placements),
 * and every sweep wants the same eleven suite members, so the cache
 * constructs each exactly once and hands out shared read-only
 * references. Safe to use from many threads: concurrent get() calls
 * for the same name block on one build; calls for different names
 * build in parallel.
 *
 * The cache used to be grow-only, which is fine for one-shot bench
 * binaries but unbounded for a resident daemon sweeping many bench
 * specs. It now carries byte accounting (the budgetable cost is the
 * per-layout committed-path arenas — see PlacedWorkload::
 * arenaBytesResident()) and LRU eviction, which sfetchd's memory
 * governor drives against its --mem-budget-mb.
 *
 * Pinning contract: get() returns a bare reference that eviction can
 * invalidate, so it remains correct only for callers that never
 * evict (every one-shot binary). Anything that runs concurrently
 * with eviction — daemon jobs above all — must pin the workload via
 * getShared() for as long as it reads it: evictLru() only removes
 * entries whose sole owner is the cache.
 */

#ifndef SFETCH_SIM_WORKLOAD_CACHE_HH
#define SFETCH_SIM_WORKLOAD_CACHE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace sfetch
{

class WorkloadCache
{
  public:
    /** The process-wide instance used by the sweep driver. */
    static WorkloadCache &instance();

    /**
     * The cached workload for @p bench_spec (a suite preset name or
     * a workload-registry spec), building it on first use. Specs are
     * keyed by their *canonical* form — family token plus the
     * canonical ParamSet text — so two specs naming the same
     * parameters in different order or spelling share one build,
     * while specs differing in any workload parameter can never
     * alias one entry. The reference stays valid (and immutable)
     * until the entry is evicted or cleared — see the pinning
     * contract in the file comment. Throws std::invalid_argument for
     * unknown names.
     */
    const PlacedWorkload &get(const std::string &bench_spec);

    /**
     * As get(), but returns an owning handle that pins the workload:
     * entries with outstanding getShared() references are never
     * evicted (and stay fully valid even across clear()).
     */
    std::shared_ptr<const PlacedWorkload>
    getShared(const std::string &bench_spec);

    /** True when @p bench_spec has already been built. */
    bool contains(const std::string &bench_spec) const;

    /** Number of workloads built so far. */
    std::size_t size() const;

    /**
     * Budgetable bytes resident in the cache: the sum of
     * arenaBytesResident() over every built entry. (Workload
     * program/image structures are a few hundred KB each and are not
     * counted; the 28 MB/arena decode memory is what a budget must
     * govern.)
     */
    std::size_t bytesResident() const;

    /**
     * Evict the least-recently-used entry whose only owner is the
     * cache (pinned entries are skipped). Returns the arena bytes
     * released, or 0 when nothing was evictable — including when the
     * cache is empty. The evicted workload's arenas die with it
     * unless a sweep still holds their shared_ptrs.
     */
    std::size_t evictLru();

    /**
     * Evict the globally least-recently-used *single-layout arena*
     * whose only owner is the cache, leaving its workload (and the
     * sibling layout's arena) resident. Returns the bytes released,
     * or 0 when no arena is evictable. Finer-grained than evictLru():
     * a sweep that alternates layouts on one workload sheds half its
     * footprint instead of losing the whole build.
     */
    std::size_t evictArenaLru();

    /**
     * Evict until bytesResident() <= @p budget_bytes or nothing more
     * is evictable: first single arenas (evictArenaLru), then whole
     * LRU entries. Returns total bytes released.
     */
    std::size_t evictToBudget(std::size_t budget_bytes);

    /** Lifetime hit/miss/eviction counters (hits = get/getShared
     * calls that found the workload already built). */
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }

    /**
     * Drop every cache entry *and* every cached arena reference,
     * including arenas of entries kept alive by outstanding
     * getShared() pins (those workloads stay usable; their arenas
     * are re-decoded on next use). Testing hook and the daemon's
     * memory panic button.
     */
    void clear();

  private:
    /**
     * Per-name slot. The once flag serializes the build; the map
     * mutex only guards slot creation/eviction, so distinct names
     * can build concurrently. Slots are shared_ptr-held: a thread
     * mid-build keeps its slot alive even if the entry is evicted
     * under it.
     */
    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<PlacedWorkload> work;
        std::uint64_t lastUse = 0;
    };

    std::shared_ptr<Slot> slot(const std::string &bench_name);
    std::shared_ptr<PlacedWorkload>
    build(const std::string &bench_spec);

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<Slot>> slots_;
    std::uint64_t useClock_ = 0;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace sfetch

#endif // SFETCH_SIM_WORKLOAD_CACHE_HH

#include "sim/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "sim/workload_cache.hh"
#include "workload/workload_registry.hh"

namespace sfetch
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
stderrIsTty()
{
#ifndef _WIN32
    return isatty(2) != 0;
#else
    return false;
#endif
}

} // namespace

SweepDriver::SweepDriver(unsigned jobs) : jobs_(jobs)
{
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

std::vector<SweepPoint>
SweepDriver::grid(const std::vector<std::string> &benches,
                  const std::vector<SimConfig> &cfgs)
{
    std::vector<SweepPoint> points;
    points.reserve(benches.size() * cfgs.size());
    for (const std::string &bench : benches)
        for (const SimConfig &cfg : cfgs)
            points.push_back({bench, cfg});
    return points;
}

std::vector<SweepPoint>
SweepDriver::grid(const std::vector<std::string> &benches,
                  const std::vector<RunConfig> &cfgs)
{
    std::vector<SimConfig> converted;
    converted.reserve(cfgs.size());
    for (const RunConfig &cfg : cfgs)
        converted.push_back(toSimConfig(cfg));
    return grid(benches, converted);
}

void
SweepDriver::parallelFor(std::size_t n,
                         const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr first_error;

    auto worker = [&] {
        while (true) {
            std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

ResultSet
SweepDriver::run(const std::vector<SweepPoint> &points)
{
    return run(points, RowCallback{});
}

ResultSet
SweepDriver::run(const std::vector<SweepPoint> &points,
                 const RowCallback &onRow)
{
    auto t0 = std::chrono::steady_clock::now();
    auto stopped = [this] {
        return stop_ && stop_->load(std::memory_order_relaxed);
    };

    // Phase 1: build each distinct workload exactly once, in
    // parallel. Later runOn() calls then only ever read the cache.
    std::set<std::string> unique;
    for (const SweepPoint &p : points)
        unique.insert(p.bench);
    std::vector<std::string> names(unique.begin(), unique.end());
    parallelFor(names.size(), [&](std::size_t i) {
        if (stopped())
            return;
        WorkloadCache::instance().get(names[i]);
    });
    double prep = secondsSince(t0);

    // Phase 1.5: decode each shared committed path exactly once.
    // Points are grouped by (canonical workload, layout, run
    // length); a group with two or more points amortizes one decode
    // pass across all of them, so every such group gets the
    // workload's shared read-only arena and its points replay from
    // flat memory instead of re-walking the CFG per point.
    using ArenaKey = std::tuple<std::string, bool, InstCount>;
    std::map<ArenaKey, std::size_t> group_sizes;
    std::vector<ArenaKey> point_keys;
    point_keys.reserve(points.size());
    for (const SweepPoint &p : points) {
        ArenaKey key{canonicalBenchSpec(p.bench),
                     p.cfg.optimizedLayout,
                     p.cfg.insts + p.cfg.warmupInsts};
        ++group_sizes[key];
        point_keys.push_back(std::move(key));
    }
    std::map<ArenaKey, std::shared_ptr<const OracleArena>> arenas;
    if (arenaMode_) {
        std::vector<const ArenaKey *> to_build;
        for (const auto &[key, n] : group_sizes)
            if (n >= 2)
                to_build.push_back(&key);
        // Materialize the map entries before the parallel build so
        // workers only ever write pre-existing slots.
        for (const ArenaKey *key : to_build)
            arenas[*key] = nullptr;
        parallelFor(to_build.size(), [&](std::size_t i) {
            if (stopped())
                return;
            const ArenaKey &key = *to_build[i];
            try {
                arenas[key] = WorkloadCache::instance()
                                  .get(std::get<0>(key))
                                  .arena(std::get<1>(key),
                                         std::get<2>(key) +
                                             kFetchAheadMargin);
            } catch (const std::bad_alloc &) {
                // Decode memory was not to be had: leave the slot
                // null and this group's points run on live
                // generation instead — slower, bit-identical rows.
                arenas[key] = nullptr;
            }
        });
    }
    double decode = secondsSince(t0) - prep;

    // Phase 2: the sweep itself. Rows are written by point index, so
    // the output order (and content) is independent of scheduling.
    std::vector<ResultRow> rows(points.size());
    std::vector<char> finished(points.size(), 0);
    std::size_t done = 0;
    std::mutex progress_mu;
    const bool progress = !quiet_ && stderrIsTty();
    parallelFor(points.size(), [&](std::size_t i) {
        if (stopped())
            return;
        const SweepPoint &p = points[i];
        const PlacedWorkload &work =
            WorkloadCache::instance().get(p.bench);
        const OracleArena *arena = nullptr;
        if (auto it = arenas.find(point_keys[i]); it != arenas.end())
            arena = it->second.get();
        auto rt0 = std::chrono::steady_clock::now();
        SimStats st = runOn(work, p.cfg, nullptr, arena);
        ResultRow &row = rows[i];
        row.bench = p.bench;
        row.cfg = p.cfg;
        row.stats = st;
        row.wallSeconds = secondsSince(rt0);
        finished[i] = 1;
        if (onRow || progress) {
            // Deliver and print under one lock so callbacks are
            // serialized and the counter on the terminal can only
            // move forward.
            std::lock_guard<std::mutex> lock(progress_mu);
            if (onRow)
                onRow(row, i, points.size());
            if (progress) {
                ++done;
                std::fprintf(stderr, "\r  sweep %zu/%zu", done,
                             points.size());
                if (done == points.size())
                    std::fputc('\n', stderr);
                std::fflush(stderr);
            }
        }
    });

    // Point order survives any scheduling (and any cancellation):
    // rows land by index, and unfinished points are simply absent.
    ResultSet rs;
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (finished[i])
            rs.add(std::move(rows[i]));
    lastWall_ = secondsSince(t0);
    rs.setWallSeconds(lastWall_);
    if (!quiet_)
        std::fprintf(stderr,
                     "driver: %zu runs on %u thread%s, wall %.2fs "
                     "(workload build %.2fs, arena decode %.2fs, "
                     "%zu arena%s)\n",
                     points.size(), jobs_, jobs_ == 1 ? "" : "s",
                     lastWall_, prep, decode, arenas.size(),
                     arenas.size() == 1 ? "" : "s");
    return rs;
}

void
SweepDriver::forEachWorkload(
    const std::vector<std::string> &benches,
    const std::function<void(const PlacedWorkload &, std::size_t)>
        &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    parallelFor(benches.size(), [&](std::size_t i) {
        fn(WorkloadCache::instance().get(benches[i]), i);
    });
    lastWall_ = secondsSince(t0);
    if (!quiet_)
        std::fprintf(stderr,
                     "driver: %zu workloads on %u thread%s, wall "
                     "%.2fs\n",
                     benches.size(), jobs_, jobs_ == 1 ? "" : "s",
                     lastWall_);
}

} // namespace sfetch

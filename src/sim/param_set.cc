#include "sim/param_set.hh"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sfetch
{

namespace
{

const char *
typeName(ParamType t)
{
    switch (t) {
      case ParamType::Int: return "int";
      case ParamType::Bool: return "bool";
      case ParamType::String: return "string";
    }
    return "?";
}

const ParamSpec &
emptySpec()
{
    static const ParamSpec spec;
    return spec;
}

} // namespace

ParamSpec &
ParamSpec::add(ParamDecl decl)
{
    if (find(decl.key))
        throw std::logic_error("ParamSpec: duplicate parameter '" +
                               decl.key + "'");
    decls_.push_back(std::move(decl));
    return *this;
}

ParamSpec &
ParamSpec::intParam(const std::string &key, std::int64_t def,
                    const std::string &doc, std::int64_t min)
{
    ParamDecl d;
    d.key = key;
    d.type = ParamType::Int;
    d.doc = doc;
    d.defInt = def;
    d.minInt = min;
    return add(std::move(d));
}

ParamSpec &
ParamSpec::boolParam(const std::string &key, bool def,
                     const std::string &doc)
{
    ParamDecl d;
    d.key = key;
    d.type = ParamType::Bool;
    d.doc = doc;
    d.defBool = def;
    return add(std::move(d));
}

ParamSpec &
ParamSpec::stringParam(const std::string &key, const std::string &def,
                       const std::string &doc)
{
    ParamDecl d;
    d.key = key;
    d.type = ParamType::String;
    d.doc = doc;
    d.defString = def;
    return add(std::move(d));
}

const ParamDecl *
ParamSpec::find(const std::string &key) const
{
    for (const ParamDecl &d : decls_)
        if (d.key == key)
            return &d;
    return nullptr;
}

std::string
ParamSpec::keyList() const
{
    std::string out;
    for (const ParamDecl &d : decls_) {
        if (!out.empty())
            out += ", ";
        out += d.key;
    }
    return out.empty() ? "<none>" : out;
}

ParamSet::ParamSet() : spec_(&emptySpec()) {}

ParamSet::ParamSet(const ParamSpec *spec)
    : spec_(spec ? spec : &emptySpec())
{}

void
ParamSet::failUnknown(const std::string &key) const
{
    throw std::invalid_argument("unknown parameter '" + key +
                                "' (known: " + spec_->keyList() +
                                ")");
}

const ParamDecl &
ParamSet::require(const std::string &key, ParamType type) const
{
    const ParamDecl *d = spec_->find(key);
    if (!d)
        failUnknown(key);
    if (d->type != type)
        throw std::invalid_argument(
            "parameter '" + key + "' is " + typeName(d->type) +
            ", accessed as " + typeName(type));
    return *d;
}

std::int64_t
ParamSet::getInt(const std::string &key) const
{
    const ParamDecl &d = require(key, ParamType::Int);
    auto it = values_.find(key);
    return it == values_.end() ? d.defInt : it->second.i;
}

bool
ParamSet::getBool(const std::string &key) const
{
    const ParamDecl &d = require(key, ParamType::Bool);
    auto it = values_.find(key);
    return it == values_.end() ? d.defBool : it->second.b;
}

const std::string &
ParamSet::getString(const std::string &key) const
{
    const ParamDecl &d = require(key, ParamType::String);
    auto it = values_.find(key);
    return it == values_.end() ? d.defString : it->second.s;
}

void
ParamSet::setInt(const std::string &key, std::int64_t value)
{
    const ParamDecl &d = require(key, ParamType::Int);
    if (value < d.minInt)
        throw std::invalid_argument(
            "parameter '" + key + "' must be >= " +
            std::to_string(d.minInt) + ", got " +
            std::to_string(value));
    values_[key].i = value;
}

void
ParamSet::setBool(const std::string &key, bool value)
{
    require(key, ParamType::Bool);
    values_[key].b = value;
}

void
ParamSet::setString(const std::string &key, const std::string &value)
{
    require(key, ParamType::String);
    // Keep values representable in the spec grammar and in JSON
    // without escaping machinery: the delimiters and quote/control
    // characters are rejected outright.
    if (value.find_first_of(",=:\"\\") != std::string::npos ||
        value.find_first_of("\n\r\t") != std::string::npos)
        throw std::invalid_argument(
            "parameter '" + key +
            "' value may not contain , = : quotes, backslashes or "
            "control characters");
    values_[key].s = value;
}

void
ParamSet::set(const std::string &key, const std::string &text)
{
    const ParamDecl *d = spec_->find(key);
    if (!d)
        failUnknown(key);
    switch (d->type) {
      case ParamType::Int: {
        char *end = nullptr;
        long long v = std::strtoll(text.c_str(), &end, 10);
        if (end == text.c_str() || *end != '\0')
            throw std::invalid_argument(
                "parameter '" + key + "' expects an integer, got '" +
                text + "'");
        setInt(key, v);
        return;
      }
      case ParamType::Bool: {
        if (text == "1" || text == "true") {
            setBool(key, true);
            return;
        }
        if (text == "0" || text == "false") {
            setBool(key, false);
            return;
        }
        throw std::invalid_argument(
            "parameter '" + key + "' expects 0/1/true/false, got '" +
            text + "'");
      }
      case ParamType::String:
        setString(key, text);
        return;
    }
}

bool
ParamSet::isDefault(const std::string &key) const
{
    const ParamDecl *d = spec_->find(key);
    if (!d)
        failUnknown(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return true;
    switch (d->type) {
      case ParamType::Int: return it->second.i == d->defInt;
      case ParamType::Bool: return it->second.b == d->defBool;
      case ParamType::String: return it->second.s == d->defString;
    }
    return true;
}

std::string
ParamSet::toSpecText() const
{
    std::ostringstream os;
    bool first = true;
    for (const ParamDecl &d : spec_->decls()) {
        if (isDefault(d.key))
            continue;
        os << (first ? "" : ",") << d.key << '=';
        first = false;
        switch (d.type) {
          case ParamType::Int: os << getInt(d.key); break;
          case ParamType::Bool: os << (getBool(d.key) ? 1 : 0); break;
          case ParamType::String: os << getString(d.key); break;
        }
    }
    return os.str();
}

void
ParamSet::applySpecText(const std::string &text)
{
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument(
                "bad parameter assignment '" + item +
                "' (want key=value)");
        set(item.substr(0, eq), item.substr(eq + 1));
    }
}

std::string
ParamSet::toJson() const
{
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const ParamDecl &d : spec_->decls()) {
        if (isDefault(d.key))
            continue;
        os << (first ? "" : ", ") << '"' << d.key << "\": ";
        first = false;
        switch (d.type) {
          case ParamType::Int:
            os << getInt(d.key);
            break;
          case ParamType::Bool:
            os << (getBool(d.key) ? "true" : "false");
            break;
          case ParamType::String:
            os << '"' << getString(d.key) << '"';
            break;
        }
    }
    os << '}';
    return os.str();
}

std::vector<std::string>
splitSpecList(const std::string &text)
{
    // Split on commas, then re-attach bare key=value items to the
    // spec before them: "ev8,stream:ftq=8,single_table=1" is
    // ["ev8", "stream:ftq=8,single_table=1"]. An item starts a new
    // spec when it has no '=', or when a ':' introduces a parameter
    // list before the first '=' (i.e. it names a token).
    std::vector<std::string> specs;
    std::string item;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        std::size_t colon = item.find(':');
        bool continuation = eq != std::string::npos &&
            (colon == std::string::npos || colon > eq);
        if (continuation && specs.empty())
            throw std::invalid_argument(
                "spec list starts with a parameter assignment '" +
                item + "' (no token to attach it to)");
        if (continuation)
            specs.back() += "," + item;
        else
            specs.push_back(item);
    }
    if (specs.empty())
        throw std::invalid_argument("empty spec list");
    return specs;
}

bool
operator==(const ParamSet &a, const ParamSet &b)
{
    if (a.spec_ != b.spec_)
        return false;
    for (const ParamDecl &d : a.spec_->decls()) {
        switch (d.type) {
          case ParamType::Int:
            if (a.getInt(d.key) != b.getInt(d.key))
                return false;
            break;
          case ParamType::Bool:
            if (a.getBool(d.key) != b.getBool(d.key))
                return false;
            break;
          case ParamType::String:
            if (a.getString(d.key) != b.getString(d.key))
                return false;
            break;
        }
    }
    return true;
}

} // namespace sfetch

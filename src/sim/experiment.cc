#include "sim/experiment.hh"

#include <atomic>
#include <stdexcept>

#include "layout/layout_opt.hh"

namespace sfetch
{

namespace
{

const EngineDescriptor &
descriptorOf(ArchKind kind)
{
    return EngineRegistry::instance().find(archToken(kind));
}

} // namespace

std::string
archName(ArchKind kind)
{
    return descriptorOf(kind).displayName;
}

std::string
archToken(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Ev8: return "ev8";
      case ArchKind::Ftb: return "ftb";
      case ArchKind::Stream: return "stream";
      case ArchKind::Trace: return "trace";
    }
    return "?";
}

ArchKind
parseArch(const std::string &token)
{
    // Resolve aliases through the registry, then map the canonical
    // token onto the legacy enum.
    const std::string &canon =
        EngineRegistry::instance().find(token).token;
    for (ArchKind kind : allArchs())
        if (archToken(kind) == canon)
            return kind;
    throw std::invalid_argument(
        "engine '" + canon +
        "' has no legacy ArchKind; use SimConfig / registry tokens");
}

bool
operator==(const RunConfig &a, const RunConfig &b)
{
    return a.arch == b.arch && a.width == b.width &&
        a.optimizedLayout == b.optimizedLayout && a.insts == b.insts &&
        a.warmupInsts == b.warmupInsts &&
        a.lineBytesOverride == b.lineBytesOverride &&
        a.ftqEntriesOverride == b.ftqEntriesOverride &&
        a.streamSingleTable == b.streamSingleTable &&
        a.streamNoHysteresis == b.streamNoHysteresis &&
        a.tracePartialMatching == b.tracePartialMatching;
}

const std::vector<ArchKind> &
allArchs()
{
    static const std::vector<ArchKind> kinds = {
        ArchKind::Ev8, ArchKind::Ftb, ArchKind::Stream,
        ArchKind::Trace,
    };
    return kinds;
}

SimConfig
toSimConfig(const RunConfig &cfg)
{
    SimConfig sc(archToken(cfg.arch));
    sc.width = cfg.width;
    sc.optimizedLayout = cfg.optimizedLayout;
    sc.insts = cfg.insts;
    sc.warmupInsts = cfg.warmupInsts;

    ParamSet &p = sc.params();
    if (cfg.lineBytesOverride)
        p.setInt("line", cfg.lineBytesOverride);
    // Engine-specific legacy fields apply only where the engine
    // declares the matching parameter (the old switch ignored them
    // elsewhere).
    if (cfg.ftqEntriesOverride && p.spec().find("ftq"))
        p.setInt("ftq",
                 static_cast<std::int64_t>(cfg.ftqEntriesOverride));
    if (cfg.streamSingleTable && p.spec().find("single_table"))
        p.setBool("single_table", true);
    if (cfg.streamNoHysteresis && p.spec().find("no_hysteresis"))
        p.setBool("no_hysteresis", true);
    if (cfg.tracePartialMatching && p.spec().find("partial_match"))
        p.setBool("partial_match", true);
    return sc;
}

PlacedWorkload::PlacedWorkload(const std::string &bench_spec)
    : name_(canonicalBenchSpec(bench_spec)),
      work_(buildBenchWorkload(name_))
{
    base_ = std::make_unique<CodeImage>(
        work_.program, baselineOrder(work_.program));

    // Profile with the `train`-flavoured input, optimize, and place.
    profile_ = std::make_unique<EdgeProfile>(collectProfile(
        work_.program, work_.model, kTrainSeed, 400'000));
    opt_ = std::make_unique<CodeImage>(
        work_.program, optimizedOrder(work_.program, *profile_));
}

namespace
{

/** Process-wide LRU clock for per-layout arena stamps. */
std::uint64_t
nextArenaUseStamp()
{
    static std::atomic<std::uint64_t> clock{0};
    return ++clock;
}

} // namespace

std::shared_ptr<const OracleArena>
PlacedWorkload::arena(bool optimized, InstCount total_insts) const
{
    std::lock_guard<std::mutex> lock(arenaMu_);
    std::shared_ptr<const OracleArena> &slot =
        arenas_[optimized ? 1 : 0];
    if (!slot || slot->size() < total_insts) {
        // The decode is a prefix property: a longer arena serves
        // every shorter request, so only the longest ever built per
        // layout is kept. Holding the lock through the build
        // serializes duplicate work instead of racing it.
        slot = std::make_shared<OracleArena>(
            image(optimized), model(), kRefSeed, total_insts);
    }
    arenaUse_[optimized ? 1 : 0] = nextArenaUseStamp();
    return slot;
}

std::shared_ptr<const OracleArena>
PlacedWorkload::cachedArena(bool optimized,
                            InstCount total_insts) const
{
    std::lock_guard<std::mutex> lock(arenaMu_);
    const std::shared_ptr<const OracleArena> &slot =
        arenas_[optimized ? 1 : 0];
    if (slot && slot->size() >= total_insts) {
        arenaUse_[optimized ? 1 : 0] = nextArenaUseStamp();
        return slot;
    }
    return nullptr;
}

std::size_t
PlacedWorkload::arenaBytesResident() const
{
    std::lock_guard<std::mutex> lock(arenaMu_);
    std::size_t bytes = 0;
    for (const auto &slot : arenas_)
        if (slot)
            bytes += slot->bytes();
    return bytes;
}

void
PlacedWorkload::dropArenas() const
{
    std::lock_guard<std::mutex> lock(arenaMu_);
    arenas_[0].reset();
    arenas_[1].reset();
    arenaUse_[0] = arenaUse_[1] = 0;
}

std::size_t
PlacedWorkload::arenaBytes(bool optimized) const
{
    std::lock_guard<std::mutex> lock(arenaMu_);
    const auto &slot = arenas_[optimized ? 1 : 0];
    return slot ? slot->bytes() : 0;
}

std::uint64_t
PlacedWorkload::arenaLastUse(bool optimized) const
{
    std::lock_guard<std::mutex> lock(arenaMu_);
    return arenaUse_[optimized ? 1 : 0];
}

std::size_t
PlacedWorkload::evictArena(bool optimized) const
{
    std::lock_guard<std::mutex> lock(arenaMu_);
    std::shared_ptr<const OracleArena> &slot =
        arenas_[optimized ? 1 : 0];
    // use_count == 1 means this slot is the arena's only owner; a
    // replay in flight holds its own shared_ptr and is left alone.
    if (!slot || slot.use_count() > 1)
        return 0;
    const std::size_t bytes = slot->bytes();
    slot.reset();
    arenaUse_[optimized ? 1 : 0] = 0;
    return bytes;
}

std::unique_ptr<FetchEngine>
makeEngine(const RunConfig &cfg, const CodeImage &image,
           MemoryHierarchy *mem)
{
    return toSimConfig(cfg).makeEngine(image, mem);
}

SimStats
runOn(const PlacedWorkload &work, const SimConfig &cfg,
      const RecordedTrace *replay, const OracleArena *arena,
      const RunTuning &tuning)
{
    if (replay && replay->bench != work.name())
        throw std::invalid_argument(
            "trace was recorded for '" + replay->bench +
            "', not '" + work.name() + "'");
    if (replay && arena)
        throw std::invalid_argument(
            "runOn: a recorded-trace replay and an arena replay "
            "are mutually exclusive");
    if (arena && arena->seed() != kRefSeed)
        throw std::invalid_argument(
            "runOn: the arena was not decoded with the ref seed "
            "this run uses");

    const CodeImage &image = work.image(cfg.optimizedLayout);
    if (arena && arena->image() != &image)
        throw std::invalid_argument(
            "runOn: the arena was decoded from a different "
            "workload or layout than this run simulates");

    MemoryConfig mc;
    mc.l1i.lineBytes = cfg.lineBytes();
    MemoryHierarchy mem(mc);

    auto engine = cfg.makeEngine(image, &mem);

    ProcessorConfig pc;
    pc.width = cfg.width;
    pc.batchedReplay = tuning.batchedReplay;
    pc.exactInstStop = tuning.exactInstStop;

    // The replayed trace supplies the control path; its seed keeps
    // the (independent) data-address stream aligned with capture.
    Processor proc(pc, engine.get(), image, work.model(), &mem,
                   replay ? replay->seed : kRefSeed, replay, arena);
    return proc.run(cfg.insts, cfg.warmupInsts);
}

RecordedTrace
recordBenchTrace(const PlacedWorkload &work, InstCount insts,
                 InstCount warmup, std::uint64_t seed)
{
    return recordTrace(work.program(), work.model(), seed,
                       insts + warmup + kFetchAheadMargin,
                       work.name());
}

SimStats
runOn(const PlacedWorkload &work, const RunConfig &cfg)
{
    return runOn(work, toSimConfig(cfg));
}

SimStats
runBenchmark(const std::string &bench_name, const SimConfig &cfg)
{
    PlacedWorkload work(bench_name);
    return runOn(work, cfg);
}

SimStats
runBenchmark(const std::string &bench_name, const RunConfig &cfg)
{
    return runBenchmark(bench_name, toSimConfig(cfg));
}

} // namespace sfetch

#include "sim/experiment.hh"

#include <stdexcept>

#include "core/stream_engine.hh"
#include "fetch/ev8.hh"
#include "fetch/ftb.hh"
#include "layout/layout_opt.hh"
#include "tcache/trace_engine.hh"

namespace sfetch
{

std::string
archName(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Ev8: return "EV8+2bcgskew";
      case ArchKind::Ftb: return "FTB+perceptron";
      case ArchKind::Stream: return "Streams";
      case ArchKind::Trace: return "Tcache+Tpred";
    }
    return "?";
}

std::string
archToken(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Ev8: return "ev8";
      case ArchKind::Ftb: return "ftb";
      case ArchKind::Stream: return "stream";
      case ArchKind::Trace: return "trace";
    }
    return "?";
}

ArchKind
parseArch(const std::string &token)
{
    if (token == "ev8")
        return ArchKind::Ev8;
    if (token == "ftb")
        return ArchKind::Ftb;
    if (token == "stream" || token == "streams")
        return ArchKind::Stream;
    if (token == "trace" || token == "tcache")
        return ArchKind::Trace;
    throw std::invalid_argument("unknown architecture '" + token +
                                "' (want ev8|ftb|stream|trace)");
}

bool
operator==(const RunConfig &a, const RunConfig &b)
{
    return a.arch == b.arch && a.width == b.width &&
        a.optimizedLayout == b.optimizedLayout && a.insts == b.insts &&
        a.warmupInsts == b.warmupInsts &&
        a.lineBytesOverride == b.lineBytesOverride &&
        a.ftqEntriesOverride == b.ftqEntriesOverride &&
        a.streamSingleTable == b.streamSingleTable &&
        a.streamNoHysteresis == b.streamNoHysteresis &&
        a.tracePartialMatching == b.tracePartialMatching;
}

const std::vector<ArchKind> &
allArchs()
{
    static const std::vector<ArchKind> kinds = {
        ArchKind::Ev8, ArchKind::Ftb, ArchKind::Stream,
        ArchKind::Trace,
    };
    return kinds;
}

unsigned
defaultLineBytes(unsigned width)
{
    // Table 2: L1 inst line = 4x pipe width (32, 64, 128 bytes).
    return 4 * width * kInstBytes;
}

PlacedWorkload::PlacedWorkload(const std::string &bench_name)
    : name_(bench_name), work_(generateWorkload(suiteParams(bench_name)))
{
    base_ = std::make_unique<CodeImage>(
        work_.program, baselineOrder(work_.program));

    // Profile with the `train`-flavoured input, optimize, and place.
    profile_ = std::make_unique<EdgeProfile>(collectProfile(
        work_.program, work_.model, kTrainSeed, 400'000));
    opt_ = std::make_unique<CodeImage>(
        work_.program, optimizedOrder(work_.program, *profile_));
}

std::unique_ptr<FetchEngine>
makeEngine(const RunConfig &cfg, const CodeImage &image,
           MemoryHierarchy *mem)
{
    const unsigned line = cfg.lineBytesOverride
        ? cfg.lineBytesOverride : defaultLineBytes(cfg.width);

    switch (cfg.arch) {
      case ArchKind::Ev8: {
        Ev8Config ec;
        ec.lineBytes = line;
        return std::make_unique<Ev8Engine>(ec, image, mem);
      }
      case ArchKind::Ftb: {
        FtbConfig fc;
        fc.lineBytes = line;
        if (cfg.ftqEntriesOverride)
            fc.ftqEntries = cfg.ftqEntriesOverride;
        return std::make_unique<FtbEngine>(fc, image, mem);
      }
      case ArchKind::Stream: {
        StreamConfig sc;
        sc.lineBytes = line;
        if (cfg.ftqEntriesOverride)
            sc.ftqEntries = cfg.ftqEntriesOverride;
        if (cfg.streamSingleTable) {
            // Ablation: all capacity in the address-indexed table.
            sc.nsp.firstEntries = 8192;
            sc.nsp.firstAssoc = 4;
            sc.nsp.pathTableEnabled = false;
        }
        if (cfg.streamNoHysteresis)
            sc.nsp.counterBits = 1;
        return std::make_unique<StreamFetchEngine>(sc, image, mem);
      }
      case ArchKind::Trace: {
        TraceEngineConfig tc;
        tc.lineBytes = line;
        tc.partialMatching = cfg.tracePartialMatching;
        return std::make_unique<TraceFetchEngine>(tc, image, mem);
      }
    }
    throw std::invalid_argument("unknown architecture");
}

SimStats
runOn(const PlacedWorkload &work, const RunConfig &cfg)
{
    const CodeImage &image = work.image(cfg.optimizedLayout);

    MemoryConfig mc;
    mc.l1i.lineBytes = cfg.lineBytesOverride
        ? cfg.lineBytesOverride : defaultLineBytes(cfg.width);
    MemoryHierarchy mem(mc);

    auto engine = makeEngine(cfg, image, &mem);

    ProcessorConfig pc;
    pc.width = cfg.width;

    Processor proc(pc, engine.get(), image, work.model(), &mem,
                   kRefSeed);
    return proc.run(cfg.insts, cfg.warmupInsts);
}

SimStats
runBenchmark(const std::string &bench_name, const RunConfig &cfg)
{
    PlacedWorkload work(bench_name);
    return runOn(work, cfg);
}

} // namespace sfetch

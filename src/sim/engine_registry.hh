/**
 * @file
 * The fetch engine registry. Each front end describes itself with an
 * EngineDescriptor — a stable token, the display name used in the
 * paper's figures, its accepted aliases, a documented ParamSpec, and
 * a factory closing over nothing — and registers it here. Everything
 * that used to be a closed enum plus a switch (arch parsing, display
 * names, the engine factory, the "all architectures" list) is a
 * registry lookup instead, so adding a front end is one
 * self-contained file: define the engine, define its descriptor,
 * register it. The `seq` engine (fetch/seq.cc) is the working
 * example.
 */

#ifndef SFETCH_SIM_ENGINE_REGISTRY_HH
#define SFETCH_SIM_ENGINE_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fetch/fetch_engine.hh"
#include "sim/param_set.hh"

namespace sfetch
{

/**
 * Builds a configured engine instance. The ParamSet arrives with
 * every parameter resolvable (in particular `line` is the concrete
 * line size, never the 0 = "4 x width" placeholder).
 */
using EngineFactory = std::function<std::unique_ptr<FetchEngine>(
    const ParamSet &, const CodeImage &, MemoryHierarchy *)>;

/** Everything the harness needs to know about one front end. */
struct EngineDescriptor
{
    std::string token;       //!< canonical spec token, e.g. "stream"
    std::string displayName; //!< figure label, e.g. "Streams"
    std::string summary;     //!< one-line description for --list-archs
    std::vector<std::string> aliases; //!< accepted alternate tokens
    /** Member of the paper's four-architecture comparison set; these
     * are what sweep binaries run when --arch is not given. */
    bool paperDefault = false;
    ParamSpec params;
    EngineFactory factory;
};

/** Process-wide registry of fetch engine descriptors. */
class EngineRegistry
{
  public:
    /** The global instance, with the built-in engines registered. */
    static EngineRegistry &instance();

    /**
     * Register a descriptor. Throws std::logic_error on a duplicate
     * token/alias or a descriptor without a factory or `line`
     * parameter (every engine must accept the engine-agnostic line
     * size).
     */
    void add(EngineDescriptor desc);

    /**
     * Resolve @p token (canonical or alias) to its descriptor.
     * Throws std::invalid_argument listing the registered engines
     * when nothing matches.
     */
    const EngineDescriptor &find(const std::string &token) const;

    /** Like find(), but returns nullptr instead of throwing. */
    const EngineDescriptor *tryFind(const std::string &token) const;

    /** Canonical tokens in registration (= plotting) order. */
    std::vector<std::string> tokens() const;

    /** Tokens of the paper's default comparison set, in order. */
    std::vector<std::string> paperTokens() const;

    std::size_t size() const { return engines_.size(); }

    /** Human-readable listing for --list-archs: every engine with
     * its aliases and per-parameter type/default/doc lines. */
    std::string listText() const;

  private:
    EngineRegistry();

    /** Descriptor storage; addresses stay stable across add(). */
    std::vector<std::unique_ptr<EngineDescriptor>> engines_;
};

namespace detail
{
// Built-in engine registration hooks, one per engine translation
// unit. Naming them here is what links the engine object files into
// binaries that only ever talk to the registry.
void registerEv8Engine(EngineRegistry &reg);
void registerFtbEngine(EngineRegistry &reg);
void registerStreamEngine(EngineRegistry &reg);
void registerTraceEngine(EngineRegistry &reg);
void registerSeqEngine(EngineRegistry &reg);
} // namespace detail

} // namespace sfetch

#endif // SFETCH_SIM_ENGINE_REGISTRY_HH

/**
 * @file
 * SimConfig: one fully-specified experiment as (engine token, engine
 * ParamSet, engine-agnostic knobs). The engine-specific surface that
 * used to be one-off RunConfig booleans lives in the owning engine's
 * ParamSpec; the knobs every run has — pipe width, code layout,
 * instruction counts — stay typed fields.
 *
 * The textual form is the spec grammar shared by the CLI, CSV and
 * JSON emitters:
 *
 *     arch[:key=value,key=value...]
 *
 * e.g. `stream`, `stream:ftq=8,single_table=1`, `trace:partial_match=1`.
 * specText() emits the canonical form (registry token, non-default
 * parameters in declaration order); fromSpec() accepts aliases and
 * any parameter order.
 */

#ifndef SFETCH_SIM_CONFIG_HH
#define SFETCH_SIM_CONFIG_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/engine_registry.hh"
#include "sim/param_set.hh"
#include "util/types.hh"

namespace sfetch
{

/** Line size implied by Table 2: 4 x pipe width instructions. */
unsigned defaultLineBytes(unsigned width);

/** One fully-specified experiment over the engine registry. */
class SimConfig
{
  public:
    unsigned width = 8;          //!< pipe width: 2, 4, or 8
    bool optimizedLayout = true; //!< spike-style layout vs baseline
    InstCount insts = 2'000'000; //!< measured instructions
    InstCount warmupInsts = 300'000;

    /** Defaults to the stream fetch architecture. */
    SimConfig();

    /** Engine selected by registry token or alias. */
    explicit SimConfig(const std::string &arch_token);

    /**
     * Parse `arch[:key=v,...]`. Accepts aliases; throws
     * std::invalid_argument on unknown engines, unknown keys, or
     * unparseable values.
     */
    static SimConfig fromSpec(const std::string &spec);

    /** Canonical engine spec: token plus non-default parameters. */
    std::string specText() const;

    /** Display label: figure name, plus parameters when ablated. */
    std::string label() const;

    /** The canonical registry token of the selected engine. */
    const std::string &arch() const { return arch_; }

    /** Select a different engine; resets the parameters. */
    void setArch(const std::string &arch_token);

    const EngineDescriptor &descriptor() const { return *desc_; }

    ParamSet &params() { return params_; }
    const ParamSet &params() const { return params_; }

    /**
     * The concrete i-cache line size of this run: the `line`
     * parameter, or 4 x width (Table 2) when it is 0. Throws when a
     * nonzero override is not a power of two.
     */
    unsigned lineBytes() const;

    /** Build the configured fetch engine via the registry factory. */
    std::unique_ptr<FetchEngine>
    makeEngine(const CodeImage &image, MemoryHierarchy *mem) const;

  private:
    std::string arch_;
    const EngineDescriptor *desc_;
    ParamSet params_;
};

bool operator==(const SimConfig &a, const SimConfig &b);
inline bool
operator!=(const SimConfig &a, const SimConfig &b)
{
    return !(a == b);
}

/**
 * Parse the CLI multi-spec form: comma-separated engine specs where
 * a list item containing '=' continues the previous spec's parameter
 * list, so `ev8,stream:ftq=8,single_table=1` is two specs. Returns
 * one SimConfig per spec with the engine-agnostic knobs at their
 * defaults.
 */
std::vector<SimConfig> parseArchSpecList(const std::string &text);

/** One SimConfig per paper-default engine, in plotting order. */
std::vector<SimConfig> paperArchConfigs();

} // namespace sfetch

#endif // SFETCH_SIM_CONFIG_HH

/**
 * @file
 * SweepDriver: the shared simulation driver behind every bench and
 * example binary. It takes a list of (benchmark, SimConfig) points,
 * builds each PlacedWorkload once (through WorkloadCache), and runs
 * the points on a std::thread pool. Every run owns its
 * MemoryHierarchy, engine and Processor and reads the shared workload
 * image read-only, so parallel execution is guaranteed bit-identical
 * to serial execution: the ResultSet rows come back in point order
 * with the exact SimStats a `--jobs 1` run would produce.
 */

#ifndef SFETCH_SIM_DRIVER_HH
#define SFETCH_SIM_DRIVER_HH

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "sim/results.hh"

namespace sfetch
{

class PlacedWorkload;

/** One cell of a sweep grid. */
struct SweepPoint
{
    std::string bench;
    SimConfig cfg;
};

class SweepDriver
{
  public:
    /**
     * @param jobs Worker threads; 0 picks hardware_concurrency().
     * Pass 1 to force serial in-thread execution.
     */
    explicit SweepDriver(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /** Suppress the stderr progress/wall-clock report. */
    void setQuiet(bool quiet) { quiet_ = quiet; }

    /**
     * Enable/disable committed-path arena sharing (default on).
     * When enabled, run() groups its points by (workload, layout,
     * insts + warmup); every group with at least two points gets the
     * workload's shared OracleArena — the committed path is decoded
     * once and each point replays it from flat memory, bit-identical
     * to live generation. Single-point groups always generate live
     * (decoding would cost exactly one generation pass and save
     * none). Off forces live generation everywhere.
     */
    void setArenaMode(bool enabled) { arenaMode_ = enabled; }
    bool arenaMode() const { return arenaMode_; }

    /** Cross product: every benchmark against every config. */
    static std::vector<SweepPoint>
    grid(const std::vector<std::string> &benches,
         const std::vector<SimConfig> &cfgs);

    /** Legacy-config overload (converted via toSimConfig()). */
    static std::vector<SweepPoint>
    grid(const std::vector<std::string> &benches,
         const std::vector<RunConfig> &cfgs);

    /**
     * Per-row completion callback for the streaming run() overload:
     * called once per finished sweep point with the completed row,
     * its point index, and the total point count. Invocations are
     * serialized under an internal mutex but arrive in *completion*
     * order (point order when jobs() == 1); the returned ResultSet
     * keeps point order regardless. The row reference is only valid
     * for the duration of the call.
     */
    using RowCallback = std::function<void(
        const ResultRow &row, std::size_t point, std::size_t of)>;

    /**
     * Execute all points and return their rows in point order.
     * Workloads are cached; points with the same benchmark share one
     * PlacedWorkload. Reports the sweep wall-clock on stderr (and in
     * ResultSet::wallSeconds) unless quiet.
     */
    ResultSet run(const std::vector<SweepPoint> &points);

    /**
     * As run(points), additionally delivering each row through
     * @p onRow the moment its point finishes — long sweeps stream
     * incremental results (sfetchd's row streaming) instead of going
     * dark until the last point lands. The callback rows and the
     * returned rows are the same objects with the same bit-identical
     * stats; a null callback is equivalent to run(points).
     */
    ResultSet run(const std::vector<SweepPoint> &points,
                  const RowCallback &onRow);

    /**
     * Cooperative cancellation: when @p stop is non-null, run()
     * checks it between units of work (workload builds, arena
     * decodes, sweep points) and skips everything not yet started
     * once it reads true. Completed points still stream and are
     * returned — the ResultSet simply ends short (rows keep point
     * order; cancelled points are absent). The pointed-to flag must
     * outlive run(). Pass nullptr to clear.
     */
    void setStopFlag(const std::atomic<bool> *stop) { stop_ = stop; }

    /**
     * Parallel map over cached workloads, for measurements that are
     * not plain runOn() sweeps (oracle walks, custom layouts). Calls
     * @p fn(workload, index) once per benchmark on the pool; @p fn
     * must only write to per-index state.
     */
    void forEachWorkload(
        const std::vector<std::string> &benches,
        const std::function<void(const PlacedWorkload &, std::size_t)>
            &fn);

    /** Wall-clock seconds of the most recent run()/forEachWorkload(). */
    double lastWallSeconds() const { return lastWall_; }

  private:
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    unsigned jobs_;
    bool quiet_ = false;
    bool arenaMode_ = true;
    const std::atomic<bool> *stop_ = nullptr;
    double lastWall_ = 0.0;
};

} // namespace sfetch

#endif // SFETCH_SIM_DRIVER_HH

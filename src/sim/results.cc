#include "sim/results.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <sstream>
#include <stdexcept>

#include "serve/jsonio.hh"
#include "util/table.hh"

namespace sfetch
{

OutputFormat
parseFormat(const std::string &token)
{
    if (token == "table")
        return OutputFormat::Table;
    if (token == "csv")
        return OutputFormat::Csv;
    if (token == "json")
        return OutputFormat::Json;
    throw std::invalid_argument("unknown format '" + token +
                                "' (want table|csv|json)");
}

std::string
formatName(OutputFormat fmt)
{
    switch (fmt) {
      case OutputFormat::Table: return "table";
      case OutputFormat::Csv: return "csv";
      case OutputFormat::Json: return "json";
    }
    return "?";
}

bool
operator==(const ResultRow &a, const ResultRow &b)
{
    return a.bench == b.bench && a.cfg == b.cfg && a.stats == b.stats;
}

ResultSet
ResultSet::where(
    const std::function<bool(const ResultRow &)> &pred) const
{
    ResultSet out;
    out.wallSeconds_ = wallSeconds_;
    for (const ResultRow &r : rows_)
        if (pred(r))
            out.rows_.push_back(r);
    return out;
}

std::vector<double>
ResultSet::collect(
    const std::function<double(const ResultRow &)> &get) const
{
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const ResultRow &r : rows_)
        out.push_back(get(r));
    return out;
}

std::vector<double>
ResultSet::collect(
    const std::function<bool(const ResultRow &)> &pred,
    const std::function<double(const ResultRow &)> &get) const
{
    std::vector<double> out;
    for (const ResultRow &r : rows_)
        if (pred(r))
            out.push_back(get(r));
    return out;
}

double
ResultSet::mean(MeanKind kind,
                const std::function<bool(const ResultRow &)> &pred,
                const std::function<double(const ResultRow &)> &get)
    const
{
    return meanOf(collect(pred, get), kind);
}

std::string
ResultSet::toTable() const
{
    TablePrinter tp;
    tp.addHeader({"benchmark", "arch", "width", "layout", "IPC",
                  "fetch IPC", "mispredict", "L1I miss"});
    for (const ResultRow &r : rows_) {
        tp.addRow({r.bench, r.cfg.label(),
                   std::to_string(r.cfg.width),
                   r.cfg.optimizedLayout ? "opt" : "base",
                   TablePrinter::fmt(r.stats.ipc()),
                   TablePrinter::fmt(r.stats.fetchIpc()),
                   TablePrinter::pct(r.stats.mispredictRate()),
                   TablePrinter::pct(r.stats.l1iMissRate, 2)});
    }
    return tp.render();
}

namespace
{

/** Doubles rendered so that parsing recovers the exact bit pattern. */
std::string
d2s(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
u2s(std::uint64_t v)
{
    return std::to_string(v);
}

constexpr std::size_t kNumBranchTypes = SimStats::kNumBranchTypes;

// kCsvColumns spells out mispredicts_type_0..6 by hand.
static_assert(SimStats::kNumBranchTypes == 7,
              "update kCsvColumns for the new branch-type arity");

/**
 * Column order of toCsv(); parsing is by header name, not index.
 * `spec` is the canonical engine spec string (`arch:key=v,...`) and
 * carries every engine-specific parameter.
 */
const char *const kCsvColumns[] = {
    "bench", "spec", "width", "layout", "insts", "warmup", "cycles",
    "committed_insts", "committed_branches",
    "committed_cond_branches", "mispredicts", "cond_mispredicts",
    "mispredicts_type_0", "mispredicts_type_1", "mispredicts_type_2",
    "mispredicts_type_3", "mispredicts_type_4", "mispredicts_type_5",
    "mispredicts_type_6", "fetched_correct", "fetched_wrong",
    "fetch_cycles_attempted", "fetch_opp_insts", "l1i_miss_rate",
    "l1d_miss_rate", "wall_seconds",
    // Derived convenience columns; ignored by fromCsv().
    "ipc", "fetch_ipc", "mispredict_rate",
};

/** Quote a cell when it needs it (spec strings contain commas). */
std::string
csvCell(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (char c : text) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cur;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur.push_back('"');
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cur.push_back(c);
            }
        } else if (c == '"' && cur.empty()) {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    cells.push_back(cur);
    return cells;
}

std::uint64_t
toU64(const std::string &s)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        throw std::runtime_error("fromCsv: bad integer '" + s + "'");
    return v;
}

double
toD(const std::string &s)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        throw std::runtime_error("fromCsv: bad number '" + s + "'");
    return v;
}

} // namespace

std::string
ResultSet::toCsv() const
{
    std::ostringstream os;
    for (std::size_t c = 0; c < std::size(kCsvColumns); ++c)
        os << (c ? "," : "") << kCsvColumns[c];
    os << "\n";
    for (const ResultRow &r : rows_) {
        const SimStats &st = r.stats;
        os << r.bench << ',' << csvCell(r.cfg.specText()) << ','
           << r.cfg.width << ','
           << (r.cfg.optimizedLayout ? "opt" : "base") << ','
           << u2s(r.cfg.insts) << ',' << u2s(r.cfg.warmupInsts) << ','
           << u2s(st.cycles) << ',' << u2s(st.committedInsts) << ','
           << u2s(st.committedBranches) << ','
           << u2s(st.committedCondBranches) << ','
           << u2s(st.mispredicts) << ',' << u2s(st.condMispredicts);
        for (std::size_t t = 0; t < kNumBranchTypes; ++t)
            os << ',' << u2s(st.mispredictsByType[t]);
        os << ',' << u2s(st.fetchedCorrect) << ','
           << u2s(st.fetchedWrong) << ','
           << u2s(st.fetchCyclesAttempted) << ','
           << u2s(st.fetchOppInsts) << ',' << d2s(st.l1iMissRate)
           << ',' << d2s(st.l1dMissRate) << ','
           << d2s(r.wallSeconds) << ',' << d2s(st.ipc()) << ','
           << d2s(st.fetchIpc()) << ',' << d2s(st.mispredictRate())
           << "\n";
    }
    return os.str();
}

ResultSet
ResultSet::fromCsv(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line))
        throw std::runtime_error("fromCsv: empty input");

    std::map<std::string, std::size_t> col;
    std::vector<std::string> header = splitCsvLine(line);
    for (std::size_t i = 0; i < header.size(); ++i)
        col[header[i]] = i;

    auto need = [&](const char *name) {
        auto it = col.find(name);
        if (it == col.end())
            throw std::runtime_error(
                std::string("fromCsv: missing column ") + name);
        return it->second;
    };

    // Validate the header up front: every stored (non-derived)
    // column must be present even when there are no data rows.
    for (const char *name : kCsvColumns)
        if (std::strcmp(name, "ipc") != 0 &&
            std::strcmp(name, "fetch_ipc") != 0 &&
            std::strcmp(name, "mispredict_rate") != 0)
            need(name);

    ResultSet out;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> cells = splitCsvLine(line);
        if (cells.size() < header.size())
            throw std::runtime_error("fromCsv: short row: " + line);
        auto cell = [&](const char *name) -> const std::string & {
            return cells[need(name)];
        };

        ResultRow r;
        r.bench = cell("bench");
        r.cfg = SimConfig::fromSpec(cell("spec"));
        r.cfg.width = static_cast<unsigned>(toU64(cell("width")));
        r.cfg.optimizedLayout = cell("layout") == "opt";
        r.cfg.insts = toU64(cell("insts"));
        r.cfg.warmupInsts = toU64(cell("warmup"));

        SimStats &st = r.stats;
        st.cycles = toU64(cell("cycles"));
        st.committedInsts = toU64(cell("committed_insts"));
        st.committedBranches = toU64(cell("committed_branches"));
        st.committedCondBranches =
            toU64(cell("committed_cond_branches"));
        st.mispredicts = toU64(cell("mispredicts"));
        st.condMispredicts = toU64(cell("cond_mispredicts"));
        for (std::size_t t = 0; t < kNumBranchTypes; ++t) {
            std::string name =
                "mispredicts_type_" + std::to_string(t);
            st.mispredictsByType[t] = toU64(cells[need(name.c_str())]);
        }
        st.fetchedCorrect = toU64(cell("fetched_correct"));
        st.fetchedWrong = toU64(cell("fetched_wrong"));
        st.fetchCyclesAttempted =
            toU64(cell("fetch_cycles_attempted"));
        st.fetchOppInsts = toU64(cell("fetch_opp_insts"));
        st.l1iMissRate = toD(cell("l1i_miss_rate"));
        st.l1dMissRate = toD(cell("l1d_miss_rate"));
        r.wallSeconds = toD(cell("wall_seconds"));
        out.add(std::move(r));
    }
    return out;
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

std::string
rowJson(const ResultRow &r)
{
    std::ostringstream os;
    const SimStats &st = r.stats;
    const SimConfig &c = r.cfg;
    os << "{\"bench\": \"" << jsonEscape(r.bench) << "\", "
       << "\"config\": {"
       << "\"spec\": \"" << jsonEscape(c.specText()) << "\", "
       << "\"arch\": \"" << jsonEscape(c.arch()) << "\", "
       << "\"params\": " << c.params().toJson() << ", "
       << "\"width\": " << c.width << ", "
       << "\"layout\": \"" << (c.optimizedLayout ? "opt" : "base")
       << "\", "
       << "\"insts\": " << u2s(c.insts) << ", "
       << "\"warmup\": " << u2s(c.warmupInsts) << "}, "
       << "\"stats\": {"
       << "\"cycles\": " << u2s(st.cycles) << ", "
       << "\"committed_insts\": " << u2s(st.committedInsts) << ", "
       << "\"committed_branches\": " << u2s(st.committedBranches)
       << ", "
       << "\"committed_cond_branches\": "
       << u2s(st.committedCondBranches) << ", "
       << "\"mispredicts\": " << u2s(st.mispredicts) << ", "
       << "\"cond_mispredicts\": " << u2s(st.condMispredicts)
       << ", \"mispredicts_by_type\": [";
    for (std::size_t t = 0; t < kNumBranchTypes; ++t)
        os << (t ? ", " : "") << u2s(st.mispredictsByType[t]);
    os << "], "
       << "\"fetched_correct\": " << u2s(st.fetchedCorrect) << ", "
       << "\"fetched_wrong\": " << u2s(st.fetchedWrong) << ", "
       << "\"fetch_cycles_attempted\": "
       << u2s(st.fetchCyclesAttempted) << ", "
       << "\"fetch_opp_insts\": " << u2s(st.fetchOppInsts) << ", "
       << "\"l1i_miss_rate\": " << d2s(st.l1iMissRate) << ", "
       << "\"l1d_miss_rate\": " << d2s(st.l1dMissRate) << ", "
       << "\"ipc\": " << d2s(st.ipc()) << ", "
       << "\"fetch_ipc\": " << d2s(st.fetchIpc()) << ", "
       << "\"mispredict_rate\": " << d2s(st.mispredictRate())
       << ", \"engine\": {";
    std::size_t k = 0;
    for (const auto &[name, val] : st.engine.all())
        os << (k++ ? ", " : "") << "\"" << jsonEscape(name)
           << "\": " << d2s(val);
    os << "}}, \"wall_seconds\": " << d2s(r.wallSeconds) << "}";
    return os.str();
}

std::string
ResultSet::rowJson(std::size_t i) const
{
    return sfetch::rowJson(rows_.at(i));
}

std::string
ResultSet::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"wall_seconds\": " << d2s(wallSeconds_)
       << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i)
        os << (i ? "," : "") << "\n    " << rowJson(i);
    os << "\n  ]\n}\n";
    return os.str();
}

ResultSet
ResultSet::fromJson(const std::string &text)
{
    JsonValue doc = JsonReader(text).parse();
    ResultSet out;
    out.setWallSeconds(doc.at("wall_seconds").asNumber());
    for (const JsonValue &jr : doc.at("rows").array) {
        ResultRow r;
        r.bench = jr.at("bench").asString();

        const JsonValue &jc = jr.at("config");
        // `spec` is authoritative; build the config from it, then
        // apply any explicit `params` entries (supports hand-edited
        // documents that only set `arch` + `params`).
        const JsonValue *spec = jc.find("spec");
        r.cfg = SimConfig::fromSpec(spec ? spec->asString()
                                         : jc.at("arch").asString());
        if (const JsonValue *params = jc.find("params")) {
            for (const auto &[key, val] : params->object) {
                switch (val.kind) {
                  case JsonValue::Kind::Number:
                    r.cfg.params().setInt(
                        key, static_cast<std::int64_t>(val.number));
                    break;
                  case JsonValue::Kind::Bool:
                    r.cfg.params().setBool(key, val.boolean);
                    break;
                  case JsonValue::Kind::String:
                    r.cfg.params().setString(key, val.string);
                    break;
                  default:
                    throw std::runtime_error(
                        "fromJson: bad param value for '" + key +
                        "'");
                }
            }
        }
        r.cfg.width = static_cast<unsigned>(jc.at("width").asU64());
        r.cfg.optimizedLayout = jc.at("layout").asString() == "opt";
        r.cfg.insts = jc.at("insts").asU64();
        r.cfg.warmupInsts = jc.at("warmup").asU64();

        const JsonValue &js = jr.at("stats");
        SimStats &st = r.stats;
        st.cycles = js.at("cycles").asU64();
        st.committedInsts = js.at("committed_insts").asU64();
        st.committedBranches = js.at("committed_branches").asU64();
        st.committedCondBranches =
            js.at("committed_cond_branches").asU64();
        st.mispredicts = js.at("mispredicts").asU64();
        st.condMispredicts = js.at("cond_mispredicts").asU64();
        const JsonValue &byType = js.at("mispredicts_by_type");
        if (byType.array.size() != kNumBranchTypes)
            throw std::runtime_error(
                "fromJson: bad mispredicts_by_type arity");
        for (std::size_t t = 0; t < kNumBranchTypes; ++t)
            st.mispredictsByType[t] = byType.array[t].asU64();
        st.fetchedCorrect = js.at("fetched_correct").asU64();
        st.fetchedWrong = js.at("fetched_wrong").asU64();
        st.fetchCyclesAttempted =
            js.at("fetch_cycles_attempted").asU64();
        st.fetchOppInsts = js.at("fetch_opp_insts").asU64();
        st.l1iMissRate = js.at("l1i_miss_rate").asNumber();
        st.l1dMissRate = js.at("l1d_miss_rate").asNumber();
        for (const auto &[name, val] : js.at("engine").object)
            st.engine.set(name, val.asNumber());

        r.wallSeconds = jr.at("wall_seconds").asNumber();
        out.add(std::move(r));
    }
    return out;
}

bool
emitMachineReadable(const ResultSet &rs, OutputFormat fmt)
{
    switch (fmt) {
      case OutputFormat::Table:
        return false;
      case OutputFormat::Csv:
        std::fputs(rs.toCsv().c_str(), stdout);
        return true;
      case OutputFormat::Json:
        std::fputs(rs.toJson().c_str(), stdout);
        return true;
    }
    return false;
}

} // namespace sfetch

#include "sim/workload_cache.hh"

namespace sfetch
{

WorkloadCache &
WorkloadCache::instance()
{
    static WorkloadCache cache;
    return cache;
}

WorkloadCache::Slot &
WorkloadCache::slot(const std::string &bench_name)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Slot> &s = slots_[bench_name];
    if (!s)
        s = std::make_unique<Slot>();
    return *s;
}

const PlacedWorkload &
WorkloadCache::get(const std::string &bench_name)
{
    Slot &s = slot(bench_name);
    std::call_once(s.once, [&] {
        s.work = std::make_unique<PlacedWorkload>(bench_name);
    });
    return *s.work;
}

bool
WorkloadCache::contains(const std::string &bench_name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(bench_name);
    return it != slots_.end() && it->second->work != nullptr;
}

std::size_t
WorkloadCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[name, s] : slots_)
        if (s->work)
            ++n;
    return n;
}

void
WorkloadCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    slots_.clear();
}

} // namespace sfetch

#include "sim/workload_cache.hh"

#include <algorithm>

#include "workload/workload_registry.hh"

namespace sfetch
{

WorkloadCache &
WorkloadCache::instance()
{
    static WorkloadCache cache;
    return cache;
}

std::shared_ptr<WorkloadCache::Slot>
WorkloadCache::slot(const std::string &bench_name)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Slot> &s = slots_[bench_name];
    if (!s)
        s = std::make_shared<Slot>();
    s->lastUse = ++useClock_;
    return s;
}

std::shared_ptr<PlacedWorkload>
WorkloadCache::build(const std::string &bench_spec)
{
    // Key on the canonical spec (validated here, before any slot is
    // created): without this, `loops:depth=2,trips=8` and
    // `loops:trips=8,depth=2` would build twice — and a key that
    // dropped workload params would let different workloads alias
    // one cache entry.
    const std::string key = canonicalBenchSpec(bench_spec);
    std::shared_ptr<Slot> s = slot(key);
    bool missed = false;
    std::call_once(s->once, [&] {
        missed = true;
        s->work = std::make_shared<PlacedWorkload>(key);
    });
    (missed ? misses_ : hits_).fetch_add(1);
    // The local shared_ptr<Slot> keeps the slot (and its workload)
    // alive even if the entry is evicted from the map concurrently.
    return s->work;
}

const PlacedWorkload &
WorkloadCache::get(const std::string &bench_spec)
{
    return *build(bench_spec);
}

std::shared_ptr<const PlacedWorkload>
WorkloadCache::getShared(const std::string &bench_spec)
{
    return build(bench_spec);
}

bool
WorkloadCache::contains(const std::string &bench_spec) const
{
    const std::string key = canonicalBenchSpec(bench_spec);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    return it != slots_.end() && it->second->work != nullptr;
}

std::size_t
WorkloadCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[name, s] : slots_)
        if (s->work)
            ++n;
    return n;
}

std::size_t
WorkloadCache::bytesResident() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t bytes = 0;
    for (const auto &[name, s] : slots_)
        if (s->work)
            bytes += s->work->arenaBytesResident();
    return bytes;
}

std::size_t
WorkloadCache::evictLru()
{
    std::lock_guard<std::mutex> lock(mu_);
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
        const std::shared_ptr<Slot> &s = it->second;
        // Only entries the cache solely owns are evictable: an
        // outstanding getShared() pin (use_count > 1) means a job is
        // still reading the workload.
        if (!s->work || s->work.use_count() > 1)
            continue;
        if (victim == slots_.end() ||
            s->lastUse < victim->second->lastUse)
            victim = it;
    }
    if (victim == slots_.end())
        return 0;
    const std::size_t bytes =
        victim->second->work->arenaBytesResident();
    slots_.erase(victim);
    evictions_.fetch_add(1);
    return bytes;
}

std::size_t
WorkloadCache::evictArenaLru()
{
    // Snapshot candidates under the map lock, oldest first; the
    // per-workload evictArena() re-checks ownership under its own
    // lock, so a replay grabbing the arena between snapshot and
    // eviction just makes that candidate yield 0 and we move on.
    struct Candidate
    {
        std::uint64_t lastUse;
        std::shared_ptr<PlacedWorkload> work;
        bool optimized;
    };
    std::vector<Candidate> candidates;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[name, s] : slots_) {
            if (!s->work)
                continue;
            for (bool optimized : {false, true})
                if (s->work->arenaBytes(optimized) > 0)
                    candidates.push_back(
                        {s->work->arenaLastUse(optimized), s->work,
                         optimized});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.lastUse < b.lastUse;
              });
    for (const Candidate &c : candidates) {
        const std::size_t bytes = c.work->evictArena(c.optimized);
        if (bytes > 0) {
            evictions_.fetch_add(1);
            return bytes;
        }
    }
    return 0;
}

std::size_t
WorkloadCache::evictToBudget(std::size_t budget_bytes)
{
    std::size_t freed = 0;
    // Arena-granular first: shedding one layout's decode often
    // suffices and keeps the workload (and its sibling arena) warm.
    while (bytesResident() > budget_bytes) {
        const std::size_t got = evictArenaLru();
        if (got == 0)
            break;
        freed += got;
    }
    while (bytesResident() > budget_bytes) {
        // Whole-entry fallback: reached when the remaining arenas
        // are externally held (evictArena refuses those, but
        // dropping the entry releases the cache's reference all the
        // same). An eviction can free 0 bytes, so progress is judged
        // by the eviction counter, not the byte yield.
        const std::uint64_t before = evictions_.load();
        freed += evictLru();
        if (evictions_.load() == before)
            break;
    }
    return freed;
}

void
WorkloadCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    // Entries pinned by getShared() survive this clear() through
    // their external owners, but their arena slots are dropped here
    // so the decode memory is released as soon as any in-flight
    // replay finishes (a clear() that left 28 MB arenas parked on
    // pinned workloads would not actually free anything).
    for (const auto &[name, s] : slots_)
        if (s->work)
            s->work->dropArenas();
    slots_.clear();
}

} // namespace sfetch

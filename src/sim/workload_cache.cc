#include "sim/workload_cache.hh"

#include "workload/workload_registry.hh"

namespace sfetch
{

WorkloadCache &
WorkloadCache::instance()
{
    static WorkloadCache cache;
    return cache;
}

WorkloadCache::Slot &
WorkloadCache::slot(const std::string &bench_name)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Slot> &s = slots_[bench_name];
    if (!s)
        s = std::make_unique<Slot>();
    return *s;
}

const PlacedWorkload &
WorkloadCache::get(const std::string &bench_spec)
{
    // Key on the canonical spec (validated here, before any slot is
    // created): without this, `loops:depth=2,trips=8` and
    // `loops:trips=8,depth=2` would build twice — and a key that
    // dropped workload params would let different workloads alias
    // one cache entry.
    const std::string key = canonicalBenchSpec(bench_spec);
    Slot &s = slot(key);
    std::call_once(s.once, [&] {
        s.work = std::make_unique<PlacedWorkload>(key);
    });
    return *s.work;
}

bool
WorkloadCache::contains(const std::string &bench_spec) const
{
    const std::string key = canonicalBenchSpec(bench_spec);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    return it != slots_.end() && it->second->work != nullptr;
}

std::size_t
WorkloadCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[name, s] : slots_)
        if (s->work)
            ++n;
    return n;
}

void
WorkloadCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    slots_.clear();
}

} // namespace sfetch

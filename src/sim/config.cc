#include "sim/config.hh"

#include <stdexcept>

namespace sfetch
{

unsigned
defaultLineBytes(unsigned width)
{
    // Table 2: L1 inst line = 4x pipe width (32, 64, 128 bytes).
    return 4 * width * kInstBytes;
}

SimConfig::SimConfig() : SimConfig("stream") {}

SimConfig::SimConfig(const std::string &arch_token)
    : desc_(&EngineRegistry::instance().find(arch_token)),
      params_(&desc_->params)
{
    arch_ = desc_->token;
}

void
SimConfig::setArch(const std::string &arch_token)
{
    desc_ = &EngineRegistry::instance().find(arch_token);
    arch_ = desc_->token;
    params_ = ParamSet(&desc_->params);
}

SimConfig
SimConfig::fromSpec(const std::string &spec)
{
    std::size_t colon = spec.find(':');
    SimConfig cfg(spec.substr(0, colon));
    if (colon != std::string::npos)
        cfg.params_.applySpecText(spec.substr(colon + 1));
    // Reject bad line overrides at parse time, where the CLI turns
    // them into a clean exit(2), not mid-sweep on a worker thread.
    if (cfg.params_.getInt("line") != 0)
        cfg.lineBytes();
    return cfg;
}

std::string
SimConfig::specText() const
{
    std::string params = params_.toSpecText();
    return params.empty() ? arch_ : arch_ + ":" + params;
}

std::string
SimConfig::label() const
{
    std::string params = params_.toSpecText();
    return params.empty() ? desc_->displayName
                          : desc_->displayName + " (" + params + ")";
}

unsigned
SimConfig::lineBytes() const
{
    auto line = static_cast<unsigned>(params_.getInt("line"));
    if (line == 0)
        return defaultLineBytes(width);
    if ((line & (line - 1)) != 0 || line < kInstBytes)
        throw std::invalid_argument(
            "line=" + std::to_string(line) +
            ": i-cache line bytes must be a power of two >= " +
            std::to_string(kInstBytes));
    return line;
}

std::unique_ptr<FetchEngine>
SimConfig::makeEngine(const CodeImage &image,
                      MemoryHierarchy *mem) const
{
    // Hand the factory a fully-resolved parameter set: the width-
    // dependent line default is an experiment-level concern no
    // engine should re-derive.
    ParamSet resolved = params_;
    resolved.setInt("line", lineBytes());
    return desc_->factory(resolved, image, mem);
}

bool
operator==(const SimConfig &a, const SimConfig &b)
{
    return a.arch() == b.arch() && a.params() == b.params() &&
        a.width == b.width &&
        a.optimizedLayout == b.optimizedLayout &&
        a.insts == b.insts && a.warmupInsts == b.warmupInsts;
}

std::vector<SimConfig>
parseArchSpecList(const std::string &text)
{
    std::vector<std::string> specs = splitSpecList(text);
    std::vector<SimConfig> out;
    out.reserve(specs.size());
    for (const std::string &spec : specs)
        out.push_back(SimConfig::fromSpec(spec));
    return out;
}

std::vector<SimConfig>
paperArchConfigs()
{
    std::vector<SimConfig> out;
    for (const std::string &token :
         EngineRegistry::instance().paperTokens())
        out.push_back(SimConfig(token));
    return out;
}

} // namespace sfetch

/**
 * @file
 * Trace cache fetch engine: the paper's high-end comparison point.
 * Primary path: next trace predictor -> trace cache, delivering a
 * whole trace (possibly crossing taken branches) per access; when a
 * trace is wider than the pipeline, the predictor and trace cache
 * stall together while it drains. Secondary path on a trace cache or
 * predictor miss: conventional i-cache fetch up to the first
 * predicted-taken branch per cycle, using a backup BTB, a gshare
 * direction predictor, and the shared RAS — the redundant second
 * engine whose cost the paper's stream architecture avoids.
 */

#ifndef SFETCH_TCACHE_TRACE_ENGINE_HH
#define SFETCH_TCACHE_TRACE_ENGINE_HH

#include <memory>

#include "bpred/btb.hh"
#include "bpred/direction_pred.hh"
#include "bpred/history.hh"
#include "bpred/ras.hh"
#include "fetch/fetch_engine.hh"
#include "fetch/token_ring.hh"
#include "tcache/fill_unit.hh"
#include "tcache/ntp.hh"
#include "tcache/trace_cache.hh"
#include "util/inline_vec.hh"

namespace sfetch
{

/** Configuration of the trace cache front end (Table 2). */
struct TraceEngineConfig
{
    NtpConfig ntp;
    TraceCacheConfig tcache;
    FillUnitConfig fill;
    BtbConfig backupBtb{1024, 4}; //!< paper: backup BTB 1K-entry 4-way
    std::size_t gshareEntries = 8192;
    unsigned gshareHistoryBits = 12;
    std::size_t rasEntries = 8;
    unsigned lineBytes = 128;
    /**
     * Partial matching: on an exact trace miss, serve the prefix of
     * a same-start resident trace that agrees with the predicted
     * directions. Off by default — the paper excludes it because it
     * degrades performance with layout-optimized codes (footnote 3).
     */
    bool partialMatching = false;
};

/** The trace cache fetch engine. */
class TraceFetchEngine : public FetchEngine
{
  public:
    TraceFetchEngine(const TraceEngineConfig &cfg,
                     const CodeImage &image, MemoryHierarchy *mem);

    /**
     * Hard bound on instructions per latched trace (the inline emit
     * queue's capacity). FillUnitConfig.maxInsts must not exceed it;
     * the constructor enforces this.
     */
    static constexpr unsigned kMaxEmitInsts = 64;

    void fetchCycle(Cycle now, unsigned max_insts,
                    FetchBundle &out) override;
    void redirect(const ResolvedBranch &rb) override;
    void trainCommit(const CommittedBranch &cb) override;
    void reset(Addr start) override;
    std::string name() const override { return "Tcache+Tpred"; }
    StatSet stats() const override;

    const TraceCache &traceCache() const { return tcache_; }
    const NextTracePredictor &predictor() const { return ntp_; }
    const TraceFillUnit &fillUnit() const { return *fill_; }

  private:
    /** Outcome of attempting the primary (trace) path. */
    enum class TraceTry
    {
        Hit,        //!< trace latched from the trace cache
        WalkStart,  //!< prediction hit, trace cache miss: walk it
        Miss,       //!< no prediction: plain secondary fetch
    };

    /** Try the primary (trace) path. */
    TraceTry tryTracePath();

    /**
     * Fetch a *predicted but not cached* trace from the i-cache,
     * following the predicted conditional directions: this is where
     * selective trace storage sends sequential traces. One line /
     * one taken branch per cycle.
     */
    void walkStep(Cycle now, unsigned max_insts,
                  FetchBundle &out);

    /** Secondary path (no prediction): one fetch block per cycle. */
    void secondaryFetch(Cycle now, unsigned max_insts,
                        FetchBundle &out);

    /** Drain the latched trace into @p out. */
    void emitTrace(unsigned max_insts, FetchBundle &out);

    TraceEngineConfig cfg_;
    const CodeImage *image_;
    ICacheReader reader_;
    NextTracePredictor ntp_;
    TraceCache tcache_;
    std::unique_ptr<TraceFillUnit> fill_;
    Btb btb_;
    GsharePredictor gshare_;
    ReturnAddressStack ras_;
    GlobalHistory specHist_;
    GlobalHistory commitHist_;
    TokenRing<EngineCheckpoint> checkpoints_;

    Addr fetchAddr_ = kNoAddr;

    /**
     * Latched trace being drained (pc list) and its token. Inline
     * storage: latching a trace is a bounded copy, never a heap
     * allocation.
     */
    InlineVec<Addr, kMaxEmitInsts> emitQueue_;
    unsigned emitPos_ = 0;
    std::uint64_t emitToken_ = 0;
    /**
     * Bit i set => emitQueue_[i] is a branch (gets emitToken_).
     * Computed when the trace is latched so emission itself does no
     * image lookups; kMaxEmitInsts <= 64 keeps it one word (checked
     * in the constructor).
     */
    std::uint64_t emitBranchMask_ = 0;

    /** In-progress predicted-trace walk (trace cache miss). */
    struct PredWalk
    {
        bool active = false;
        Addr pc = kNoAddr;
        std::uint32_t dirBits = 0;
        std::uint8_t condsLeft = 0;
        std::uint32_t instsLeft = 0;
        Addr nextAfter = kNoAddr;
        std::uint64_t traceId = 0;
        std::uint64_t token = 0;
    };
    PredWalk walk_;

    // stats
    std::uint64_t traceHits_ = 0;
    std::uint64_t traceMisses_ = 0;
    std::uint64_t partialHits_ = 0;
    std::uint64_t secondaryCycles_ = 0;
    std::uint64_t instsFromTrace_ = 0;
    std::uint64_t instsFromIcache_ = 0;
};

} // namespace sfetch

#endif // SFETCH_TCACHE_TRACE_ENGINE_HH

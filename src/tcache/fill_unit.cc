#include "tcache/fill_unit.hh"

#include <cassert>

namespace sfetch
{

void
TraceFillUnit::addRun(Addr from, std::uint32_t len_insts)
{
    if (len_insts == 0)
        return;
    if (!cur_.segments.empty()) {
        TraceSegment &last = cur_.segments.back();
        if (last.start + instsToBytes(last.lenInsts) == from) {
            last.lenInsts += len_insts;
            cur_.totalInsts += len_insts;
            return;
        }
    }
    cur_.segments.push_back(TraceSegment{from, len_insts});
    cur_.totalInsts += len_insts;
}

void
TraceFillUnit::complete(Addr next)
{
    if (cur_.totalInsts == 0) {
        // Nothing accumulated (e.g.\ back-to-back completions).
        cur_ = TraceDescriptor{};
        cur_.start = next;
        fill_pc_ = next;
        return;
    }
    cur_.next = next;
    ++built_;
    lengths_.sample(cur_.totalInsts);
    sink_(cur_, pending_mispredict_);
    pending_mispredict_ = false;

    cur_ = TraceDescriptor{};
    cur_.start = next;
    fill_pc_ = next;
}

void
TraceFillUnit::onBranch(const CommittedBranch &cb)
{
    assert(cb.pc >= fill_pc_ || cur_.totalInsts == 0);

    // Instructions from fill_pc_ to the branch inclusive.
    std::uint32_t run = static_cast<std::uint32_t>(
        (cb.pc + kInstBytes - fill_pc_) / kInstBytes);

    // Absorb the run, splitting at the capacity limit: a trace that
    // fills up mid-run completes with a sequential successor.
    while (cur_.totalInsts + run > cfg_.maxInsts) {
        std::uint32_t room = cfg_.maxInsts - cur_.totalInsts;
        addRun(fill_pc_, room);
        fill_pc_ += instsToBytes(room);
        run -= room;
        complete(fill_pc_);
    }
    addRun(fill_pc_, run);

    // Record the branch itself.
    bool end = false;
    if (cb.type == BranchType::CondDirect) {
        if (cb.taken)
            cur_.dirBits |= (1u << cur_.numCond);
        ++cur_.numCond;
        if (cur_.numCond >= cfg_.maxCondBranches)
            end = true;
    } else if (cb.type == BranchType::Return ||
               cb.type == BranchType::IndirectJump) {
        // Unpredictable-target transfers always end a trace.
        end = true;
    }
    if (cur_.segments.size() >= cfg_.maxSegments)
        end = true;
    if (cur_.totalInsts >= cfg_.maxInsts)
        end = true;

    Addr next_pc = cb.taken ? cb.target : cb.pc + kInstBytes;
    cur_.endType = cb.type;
    fill_pc_ = next_pc;

    if (end)
        complete(next_pc);
}

} // namespace sfetch

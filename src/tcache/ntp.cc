#include "tcache/ntp.hh"

#include <cassert>

namespace sfetch
{

NextTracePredictor::NextTracePredictor(const NtpConfig &cfg)
    : cfg_(cfg), specPath_(cfg.dolc), commitPath_(cfg.dolc)
{
    assert(cfg_.firstEntries % cfg_.firstAssoc == 0);
    assert(cfg_.secondEntries % cfg_.secondAssoc == 0);
    first_.numSets = cfg_.firstEntries / cfg_.firstAssoc;
    first_.assoc = cfg_.firstAssoc;
    first_.resize(cfg_.firstEntries);
    second_.numSets = cfg_.secondEntries / cfg_.secondAssoc;
    while ((1ULL << secondIndexBits_) < second_.numSets)
        ++secondIndexBits_;
    second_.assoc = cfg_.secondAssoc;
    second_.resize(cfg_.secondEntries);
}

NextTracePredictor::Entry *
NextTracePredictor::Table::find(std::size_t set, std::uint64_t tag,
                                std::uint64_t tick)
{
    const std::size_t base = set * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        if (valid[base + w] && tags[base + w] == tag) {
            Entry &e = ways[base + w];
            e.lastUse = tick;
            return &e;
        }
    }
    return nullptr;
}

void
NextTracePredictor::Table::updateEntry(Entry &e,
                                       const TraceDescriptor &t)
{
    if (e.sameData(t)) {
        e.counter.increment();
    } else {
        e.counter.decrement();
        if (e.counter.value() == 0) {
            e.dirBits = t.dirBits;
            e.numCond = t.numCond;
            e.totalInsts = t.totalInsts;
            e.endType = t.endType;
            e.next = t.next;
            e.counter.set(1);
        }
    }
}

bool
NextTracePredictor::Table::install(std::size_t set, std::uint64_t tag,
                                   const TraceDescriptor &t,
                                   std::uint64_t tick)
{
    const std::size_t base = set * assoc;
    std::size_t vi = std::size_t(-1);
    for (unsigned w = 0; w < assoc; ++w) {
        if (!valid[base + w]) {
            vi = base + w;
            break;
        }
        Entry &e = ways[base + w];
        if (vi == std::size_t(-1) ||
            e.counter.value() < ways[vi].counter.value() ||
            (e.counter.value() == ways[vi].counter.value() &&
             e.lastUse < ways[vi].lastUse)) {
            vi = base + w;
        }
    }

    Entry *victim = &ways[vi];
    if (valid[vi] && victim->counter.value() > 0) {
        victim->counter.decrement();
        return false;
    }

    valid[vi] = 1;
    tags[vi] = tag;
    victim->dirBits = t.dirBits;
    victim->numCond = t.numCond;
    victim->totalInsts = t.totalInsts;
    victim->endType = t.endType;
    victim->next = t.next;
    victim->counter.set(1);
    victim->lastUse = tick;
    return true;
}

std::size_t
NextTracePredictor::firstSet(Addr start) const
{
    return (start / kInstBytes) & (first_.numSets - 1);
}

std::uint64_t
NextTracePredictor::firstTag(Addr start) const
{
    return (start / kInstBytes) / first_.numSets;
}

std::size_t
NextTracePredictor::secondSet(Addr start,
                               const DolcHistory &path) const
{
    return static_cast<std::size_t>(
        path.index(start, secondIndexBits_));
}

std::uint64_t
NextTracePredictor::secondTag(Addr start,
                              const DolcHistory &path) const
{
    return (path.signature(start) >> 40) ^ (start / kInstBytes);
}

TracePrediction
NextTracePredictor::predict(Addr start)
{
    ++lookups_;
    ++tick_;

    // Prefetch both probe points so the two associative scans
    // overlap their host memory latencies.
    const std::size_t set1 = firstSet(start);
    const std::size_t set2 = secondSet(start, specPath_);
    first_.prefetchSet(set1);
    second_.prefetchSet(set2);
    Entry *e2 = second_.find(set2, secondTag(start, specPath_), tick_);
    Entry *e1 = first_.find(set1, firstTag(start), tick_);

    TracePrediction p;
    Entry *use = e2 ? e2 : e1;
    if (use) {
        (e2 ? secondHits_ : firstHits_)++;
        p.hit = true;
        p.fromPathTable = (use == e2);
        p.dirBits = use->dirBits;
        p.numCond = use->numCond;
        p.totalInsts = use->totalInsts;
        p.endType = use->endType;
        p.next = use->next;
    } else {
        ++misses_;
    }
    return p;
}

void
NextTracePredictor::commitTrace(const TraceDescriptor &t,
                                bool mispredicted)
{
    ++tick_;

    const std::size_t set1 = firstSet(t.start);
    const std::uint64_t tag1 = firstTag(t.start);
    const std::size_t set2 = secondSet(t.start, commitPath_);
    const std::uint64_t tag2 = secondTag(t.start, commitPath_);
    first_.prefetchSet(set1);
    second_.prefetchSet(set2);

    Entry *e1 = first_.find(set1, tag1, tick_);
    Entry *e2 = second_.find(set2, tag2, tick_);

    if (e1)
        Table::updateEntry(*e1, t);
    else
        first_.install(set1, tag1, t, tick_);

    if (e2) {
        Table::updateEntry(*e2, t);
    } else if (mispredicted) {
        // Cascade insertion: only traces the front end mispredicted
        // need path correlation; the rest stay first-level only.
        second_.install(set2, tag2, t, tick_);
    }

    commitPath_.push(t.id());
}

StatSet
NextTracePredictor::stats() const
{
    StatSet s;
    s.set("ntp.lookups", double(lookups_));
    s.set("ntp.first_hits", double(firstHits_));
    s.set("ntp.second_hits", double(secondHits_));
    s.set("ntp.misses", double(misses_));
    double denom = double(lookups_ ? lookups_ : 1);
    s.set("ntp.hit_rate", double(firstHits_ + secondHits_) / denom);
    return s;
}

} // namespace sfetch

/**
 * @file
 * The trace cache storage array with selective trace storage
 * (Ramirez et al., "red & blue traces", HPCA 2000): traces whose
 * blocks are entirely sequential in memory are redundant with the
 * instruction cache and are not stored, which is the configuration
 * the paper evaluates.
 */

#ifndef SFETCH_TCACHE_TRACE_CACHE_HH
#define SFETCH_TCACHE_TRACE_CACHE_HH

#include <vector>

#include "tcache/trace.hh"

namespace sfetch
{

/** Trace cache geometry. */
struct TraceCacheConfig
{
    std::uint64_t sizeBytes = 32u << 10; //!< paper: 32KB storage
    unsigned assoc = 2;                  //!< paper: 2-way
    std::uint32_t maxInsts = 16;         //!< trace length limit
    bool selectiveStorage = true;        //!< skip sequential traces
};

/** Set-associative trace storage, tagged by (start, dirs, numCond). */
class TraceCache
{
  public:
    explicit TraceCache(const TraceCacheConfig &cfg);

    /** Look up the exact trace predicted by the next trace predictor. */
    const TraceDescriptor *lookup(Addr start, std::uint32_t dir_bits,
                                  std::uint8_t num_cond);

    /**
     * Partial-matching support: return any resident trace with the
     * given start address (most recently used first), regardless of
     * its embedded directions. The caller consumes the prefix that
     * agrees with its prediction. The paper reports this
     * optimization *hurts* with layout-optimized codes (footnote 3);
     * it is off by default and exercised by an ablation bench.
     */
    const TraceDescriptor *lookupAnyDirections(Addr start);

    /**
     * Insert a completed trace. Sequential traces are rejected when
     * selective storage is enabled. @return true if stored.
     */
    bool insert(const TraceDescriptor &trace);

    std::size_t numEntries() const { return entries_; }
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t rejectedSequential() const { return rejected_; }

  private:
    struct Way
    {
        TraceDescriptor trace;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t setIndex(Addr start) const;

    TraceCacheConfig cfg_;
    std::size_t entries_;
    std::size_t numSets_;
    std::vector<Way> ways_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t rejected_ = 0;
};

} // namespace sfetch

#endif // SFETCH_TCACHE_TRACE_CACHE_HH

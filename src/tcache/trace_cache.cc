#include "tcache/trace_cache.hh"

#include <cassert>

namespace sfetch
{

TraceCache::TraceCache(const TraceCacheConfig &cfg) : cfg_(cfg)
{
    // One entry holds maxInsts instructions of 4 bytes each.
    entries_ = cfg_.sizeBytes / (std::uint64_t(cfg_.maxInsts) *
                                 kInstBytes);
    assert(entries_ % cfg_.assoc == 0);
    numSets_ = entries_ / cfg_.assoc;
    assert(numSets_ && !(numSets_ & (numSets_ - 1)));
    ways_.resize(entries_);
}

std::size_t
TraceCache::setIndex(Addr start) const
{
    return (start / kInstBytes) & (numSets_ - 1);
}

const TraceDescriptor *
TraceCache::lookup(Addr start, std::uint32_t dir_bits,
                   std::uint8_t num_cond)
{
    ++lookups_;
    ++tick_;
    const std::size_t base = setIndex(start) * cfg_.assoc;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.trace.start == start &&
            way.trace.numCond == num_cond &&
            (way.trace.dirBits & ((1u << num_cond) - 1)) ==
                (dir_bits & ((1u << num_cond) - 1))) {
            way.lastUse = tick_;
            ++hits_;
            return &way.trace;
        }
    }
    return nullptr;
}

const TraceDescriptor *
TraceCache::lookupAnyDirections(Addr start)
{
    ++tick_;
    const std::size_t base = setIndex(start) * cfg_.assoc;
    Way *best = nullptr;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.trace.start == start &&
            (!best || way.lastUse > best->lastUse)) {
            best = &way;
        }
    }
    if (!best)
        return nullptr;
    best->lastUse = tick_;
    return &best->trace;
}

bool
TraceCache::insert(const TraceDescriptor &trace)
{
    if (cfg_.selectiveStorage && trace.sequential()) {
        ++rejected_;
        return false;
    }

    ++tick_;
    const std::size_t base = setIndex(trace.start) * cfg_.assoc;

    std::size_t victim = base;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.trace.start == trace.start &&
            way.trace.numCond == trace.numCond &&
            way.trace.dirBits == trace.dirBits) {
            // Refresh an identical trace in place.
            way.trace = trace;
            way.lastUse = tick_;
            return true;
        }
        std::uint64_t age = way.valid ? way.lastUse : 0;
        if (!way.valid) {
            victim = base + w;
            oldest = 0;
        } else if (age < oldest) {
            oldest = age;
            victim = base + w;
        }
    }

    Way &way = ways_[victim];
    way.valid = true;
    way.trace = trace;
    way.lastUse = tick_;
    ++inserts_;
    return true;
}

} // namespace sfetch

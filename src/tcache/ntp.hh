/**
 * @file
 * Next trace predictor (Jacobson, Rotenberg, Smith, MICRO 1997):
 * trace-level sequencing for the trace cache, in the cascaded
 * configuration the paper uses (first level 1K-entry 4-way, second
 * level 4K-entry 4-way, DOLC 9-4-7-9).
 *
 * Given the start address of the next trace to fetch and the path of
 * recently fetched trace ids, the predictor supplies the embedded
 * branch directions (so the trace cache can be probed for the exact
 * trace) and the successor fetch address.
 */

#ifndef SFETCH_TCACHE_NTP_HH
#define SFETCH_TCACHE_NTP_HH

#include <vector>

#include "tcache/trace.hh"
#include "util/dolc.hh"
#include "util/sat_counter.hh"
#include "util/stats.hh"

namespace sfetch
{

/** Geometry of the next trace predictor (Table 2 of the paper). */
struct NtpConfig
{
    std::size_t firstEntries = 1024; //!< paper: 1K-entry, 4-way
    unsigned firstAssoc = 4;
    std::size_t secondEntries = 4096; //!< paper: 4K-entry, 4-way
    unsigned secondAssoc = 4;
    DolcSpec dolc{9, 4, 7, 9};        //!< paper: DOLC 9-4-7-9
};

/** Predicted trace identity and successor. */
struct TracePrediction
{
    bool hit = false;
    bool fromPathTable = false;
    std::uint32_t dirBits = 0;
    std::uint8_t numCond = 0;
    std::uint32_t totalInsts = 0;
    BranchType endType = BranchType::None;
    Addr next = kNoAddr;
};

/** The cascaded path-based next trace predictor. */
class NextTracePredictor
{
  public:
    explicit NextTracePredictor(const NtpConfig &cfg = NtpConfig{});

    /** Predict the trace starting at @p start. */
    TracePrediction predict(Addr start);

    /** Record a fetched trace id in the speculative path. */
    void specPush(std::uint64_t trace_id) { specPath_.push(trace_id); }

    /** Train with a completed trace (committed path indexing). */
    void commitTrace(const TraceDescriptor &t, bool mispredicted);

    /** Misprediction repair: speculative path := committed path. */
    void recoverHistory() { specPath_.copyFrom(commitPath_); }

    StatSet stats() const;

  private:
    struct Entry
    {
        std::uint32_t dirBits = 0;
        std::uint8_t numCond = 0;
        std::uint32_t totalInsts = 0;
        BranchType endType = BranchType::None;
        Addr next = kNoAddr;
        SatCounter counter{2, 0};
        std::uint64_t lastUse = 0;

        bool
        sameData(const TraceDescriptor &t) const
        {
            return dirBits == t.dirBits && numCond == t.numCond &&
                   totalInsts == t.totalInsts && next == t.next &&
                   endType == t.endType;
        }
    };

    /**
     * Set-associative table with the tag/valid bits split from the
     * entry payload: the associative probe walks two dense side
     * arrays and touches an Entry only on a hit.
     */
    struct Table
    {
        std::vector<std::uint64_t> tags;
        std::vector<std::uint8_t> valid;
        std::vector<Entry> ways;
        std::size_t numSets = 0;
        unsigned assoc = 0;

        void
        resize(std::size_t entries)
        {
            tags.assign(entries, 0);
            valid.assign(entries, 0);
            ways.assign(entries, Entry{});
        }

        /**
         * Host-side prefetch of a set's probe state, so a caller
         * that knows it will find() two tables can overlap their
         * memory latencies. No modelled state is touched.
         */
        void
        prefetchSet(std::size_t set) const
        {
#if defined(__GNUC__) || defined(__clang__)
            const std::size_t base = set * assoc;
            __builtin_prefetch(&tags[base], 0, 1);
            __builtin_prefetch(&valid[base], 0, 1);
#endif
        }

        Entry *find(std::size_t set, std::uint64_t tag,
                    std::uint64_t tick);
        bool install(std::size_t set, std::uint64_t tag,
                     const TraceDescriptor &t, std::uint64_t tick);
        static void updateEntry(Entry &e, const TraceDescriptor &t);
    };

    std::size_t firstSet(Addr start) const;
    std::uint64_t firstTag(Addr start) const;
    std::size_t secondSet(Addr start, const DolcHistory &path) const;
    std::uint64_t secondTag(Addr start, const DolcHistory &path) const;

    NtpConfig cfg_;
    Table first_;
    Table second_;
    unsigned secondIndexBits_ = 0; //!< log2(second_.numSets)
    DolcHistory specPath_;
    DolcHistory commitPath_;
    std::uint64_t tick_ = 0;

    std::uint64_t lookups_ = 0;
    std::uint64_t firstHits_ = 0;
    std::uint64_t secondHits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace sfetch

#endif // SFETCH_TCACHE_NTP_HH

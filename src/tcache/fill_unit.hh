/**
 * @file
 * Trace fill unit: watches the committed instruction stream (as
 * branch records plus the sequential runs between them) and builds
 * traces off the critical path, inserting them into the trace cache
 * and training the next trace predictor.
 */

#ifndef SFETCH_TCACHE_FILL_UNIT_HH
#define SFETCH_TCACHE_FILL_UNIT_HH

#include <functional>
#include <stdexcept>
#include <string>

#include "fetch/fetch_engine.hh"
#include "tcache/trace.hh"
#include "util/stats.hh"

namespace sfetch
{

/** Trace construction limits. */
struct FillUnitConfig
{
    std::uint32_t maxInsts = 16;
    std::uint8_t maxCondBranches = 3;
    /** Must not exceed TraceDescriptor::kMaxSegments. */
    std::size_t maxSegments = 8;
};

/** Builds traces from the retired branch stream. */
class TraceFillUnit
{
  public:
    using Sink = std::function<void(const TraceDescriptor &,
                                    bool mispredicted)>;

    TraceFillUnit(Addr start, const FillUnitConfig &cfg, Sink sink)
        : cfg_(cfg), sink_(std::move(sink))
    {
        // Runtime check, not an assert: the limit comes from user
        // configuration and overrunning the descriptor's inline
        // segment array would silently truncate traces.
        if (cfg_.maxSegments > TraceDescriptor::kMaxSegments) {
            throw std::invalid_argument(
                "FillUnitConfig.maxSegments " +
                std::to_string(cfg_.maxSegments) +
                " exceeds TraceDescriptor::kMaxSegments " +
                std::to_string(TraceDescriptor::kMaxSegments));
        }
        reset(start);
    }

    /** Feed the next committed branch. */
    void onBranch(const CommittedBranch &cb);

    /** Note that a misprediction resolved (upgrade-policy hint). */
    void onMispredict() { pending_mispredict_ = true; }

    /**
     * Back to a pristine fill unit collecting from @p start: the
     * in-progress (possibly partial) trace is discarded — never
     * emitted — and the statistics counters restart, so a unit
     * reused via reset() reports only the traces of the current
     * run and an interrupted fill cannot leak segments into it.
     */
    void
    reset(Addr start)
    {
        cur_ = TraceDescriptor{};
        cur_.start = start;
        fill_pc_ = start;
        pending_mispredict_ = false;
        built_ = 0;
        lengths_.reset();
    }

    std::uint64_t tracesBuilt() const { return built_; }
    const Histogram &lengthHistogram() const { return lengths_; }

  private:
    void addRun(Addr from, std::uint32_t len_insts);
    void complete(Addr next);

    FillUnitConfig cfg_;
    Sink sink_;
    TraceDescriptor cur_;
    Addr fill_pc_ = kNoAddr; //!< next PC to be absorbed into cur_
    bool pending_mispredict_ = false;
    std::uint64_t built_ = 0;
    Histogram lengths_{64};
};

} // namespace sfetch

#endif // SFETCH_TCACHE_FILL_UNIT_HH

/**
 * @file
 * Trace descriptor for the trace cache comparison architecture
 * (Rotenberg, Bennett, Smith). A trace is a hardware-bounded segment
 * of the dynamic instruction stream: up to N instructions and B
 * conditional branches, ending early at returns and indirect jumps.
 * Unlike a stream, identifying a trace requires the start address
 * *and* the directions of the embedded conditional branches.
 */

#ifndef SFETCH_TCACHE_TRACE_HH
#define SFETCH_TCACHE_TRACE_HH

#include <cstdint>

#include "isa/instruction.hh"
#include "util/inline_vec.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace sfetch
{

/** A run of sequential instructions within a trace. */
struct TraceSegment
{
    Addr start = kNoAddr;
    std::uint32_t lenInsts = 0;
};

/** A complete trace as built by the fill unit. */
struct TraceDescriptor
{
    /**
     * Hard bound on segments per trace (a segment ends at every
     * taken branch, so this caps embedded taken branches). The
     * inline storage makes a TraceDescriptor trivially copyable:
     * the fill unit's in-progress trace, the cache's ways, and the
     * predictor training path never touch the heap.
     */
    static constexpr unsigned kMaxSegments = 8;

    Addr start = kNoAddr;
    std::uint32_t dirBits = 0;   //!< embedded cond directions (bit i)
    std::uint8_t numCond = 0;    //!< number of embedded cond branches
    std::uint32_t totalInsts = 0;
    BranchType endType = BranchType::None;
    Addr next = kNoAddr;         //!< successor fetch address
    InlineVec<TraceSegment, kMaxSegments> segments;

    /** True when the trace never crosses a taken branch. */
    bool sequential() const { return segments.size() <= 1; }

    /**
     * Trace identity hash used as a path element by the next trace
     * predictor.
     */
    std::uint64_t
    id() const
    {
        return mix64((start / kInstBytes) ^
                     (std::uint64_t(dirBits) << 32) ^
                     (std::uint64_t(numCond) << 56));
    }

    /** Identity of a (start, dirs, numCond) triple. */
    static std::uint64_t
    idOf(Addr start, std::uint32_t dir_bits, std::uint8_t num_cond)
    {
        return mix64((start / kInstBytes) ^
                     (std::uint64_t(dir_bits) << 32) ^
                     (std::uint64_t(num_cond) << 56));
    }
};

} // namespace sfetch

#endif // SFETCH_TCACHE_TRACE_HH

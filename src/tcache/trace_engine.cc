#include "tcache/trace_engine.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/engine_registry.hh"
#include "util/simd.hh"

namespace sfetch
{

TraceFetchEngine::TraceFetchEngine(const TraceEngineConfig &cfg,
                                   const CodeImage &image,
                                   MemoryHierarchy *mem)
    : cfg_(cfg), image_(&image), reader_(mem, cfg.lineBytes),
      ntp_(cfg.ntp), tcache_(cfg.tcache), btb_(cfg.backupBtb),
      gshare_(cfg.gshareEntries, cfg.gshareHistoryBits),
      ras_(cfg.rasEntries), fetchAddr_(image.entryAddr())
{
    // Runtime check, not an assert: the trace length limit comes
    // from user configuration, and a trace longer than the inline
    // emit queue would be silently truncated when latched.
    if (cfg_.fill.maxInsts > kMaxEmitInsts) {
        throw std::invalid_argument(
            "FillUnitConfig.maxInsts " +
            std::to_string(cfg_.fill.maxInsts) +
            " exceeds TraceFetchEngine::kMaxEmitInsts " +
            std::to_string(kMaxEmitInsts));
    }
    fill_ = std::make_unique<TraceFillUnit>(
        image.entryAddr(), cfg_.fill,
        [this](const TraceDescriptor &t, bool mispredicted) {
            ntp_.commitTrace(t, mispredicted);
            tcache_.insert(t);
        });
}

TraceFetchEngine::TraceTry
TraceFetchEngine::tryTracePath()
{
    if (!image_->contains(fetchAddr_))
        return TraceTry::Miss;

    TracePrediction pred = ntp_.predict(fetchAddr_);
    if (!pred.hit)
        return TraceTry::Miss;

    std::uint64_t token = checkpoints_.put(
        EngineCheckpoint{ras_.save(), specHist_.value()});
    std::uint64_t trace_id =
        TraceDescriptor::idOf(fetchAddr_, pred.dirBits, pred.numCond);

    const TraceDescriptor *trace =
        tcache_.lookup(fetchAddr_, pred.dirBits, pred.numCond);

    if (!trace && cfg_.partialMatching) {
        // Partial matching: serve the prefix of any same-start trace
        // that agrees with the predicted directions up to the first
        // divergent conditional.
        const TraceDescriptor *any =
            tcache_.lookupAnyDirections(fetchAddr_);
        if (any) {
            ++partialHits_;
            emitQueue_.clear();
            emitPos_ = 0;
            emitToken_ = token;
            emitBranchMask_ = 0;

            unsigned cond_idx = 0;
            Addr next = kNoAddr;
            bool cut = false;
            for (const TraceSegment &seg : any->segments) {
                for (std::uint32_t i = 0;
                     i < seg.lenInsts && !cut; ++i) {
                    Addr pc = seg.start + instsToBytes(i);
                    emitQueue_.push_back(pc);
                    const StaticInst &si = image_->inst(pc);
                    if (si.isBranch())
                        emitBranchMask_ |= std::uint64_t(1)
                            << (emitQueue_.size() - 1);
                    if (si.btype == BranchType::Call)
                        ras_.push(pc + kInstBytes);
                    if (si.btype != BranchType::CondDirect)
                        continue;
                    bool stored = (any->dirBits >> cond_idx) & 1;
                    bool want = (pred.dirBits >> cond_idx) & 1;
                    specHist_.push(want);
                    ++cond_idx;
                    if (stored != want) {
                        // Cut after the divergent conditional and
                        // continue on the predicted direction.
                        next = want ? image_->takenTarget(pc)
                                    : pc + kInstBytes;
                        cut = true;
                    }
                }
                if (cut)
                    break;
            }
            if (!cut)
                next = any->next;
            if (next == kNoAddr || !image_->contains(next)) {
                next = emitQueue_.empty()
                    ? fetchAddr_
                    : emitQueue_.back() + kInstBytes;
            }
            ntp_.specPush(trace_id);
            fetchAddr_ = next;
            return TraceTry::Hit;
        }
    }

    if (!trace) {
        // Trace cache miss (typically a sequential trace excluded by
        // selective storage): fetch the predicted trace through the
        // i-cache, keeping trace-level sequencing intact.
        ++traceMisses_;
        walk_.active = true;
        walk_.pc = fetchAddr_;
        walk_.dirBits = pred.dirBits;
        walk_.condsLeft = pred.numCond;
        walk_.instsLeft = pred.totalInsts
            ? pred.totalInsts : cfg_.fill.maxInsts;
        walk_.traceId = trace_id;
        walk_.token = token;

        Addr next = pred.next;
        if (pred.endType == BranchType::Return) {
            Addr t = ras_.pop();
            if (t != kNoAddr && image_->contains(t))
                next = t;
        }
        walk_.nextAfter = next;
        return TraceTry::WalkStart;
    }
    ++traceHits_;

    // Latch the trace for emission: a single pass over the image's
    // packed branch types builds the queue, the emit-token mask, the
    // speculative direction history, and the in-trace call list
    // (instead of one queue-building walk plus two StaticInst
    // re-walks, with a further per-inst lookup at emission).
    emitQueue_.clear();
    emitPos_ = 0;
    emitToken_ = token;
    std::uint64_t bmask = 0;
    std::uint64_t call_mask = 0;
    unsigned cond_idx = 0;
    unsigned qi = 0;
    for (const TraceSegment &seg : trace->segments) {
        const std::uint8_t *bt = image_->btypes() +
            (seg.start - image_->baseAddr()) / kInstBytes;
        for (std::uint32_t i = 0; i < seg.lenInsts; ++i, ++qi) {
            emitQueue_.push_back(seg.start + instsToBytes(i));
            const auto b = static_cast<BranchType>(bt[i]);
            if (b == BranchType::None)
                continue;
            bmask |= std::uint64_t(1) << qi;
            if (b == BranchType::CondDirect) {
                // Speculative direction history for the embedded
                // conditionals.
                specHist_.push((trace->dirBits >> cond_idx) & 1);
                ++cond_idx;
            } else if (b == BranchType::Call) {
                call_mask |= std::uint64_t(1) << qi;
            }
        }
    }
    emitBranchMask_ = bmask;

    // Successor: predictor-provided, with RAS override for returns.
    Addr next = pred.next;
    Addr seq_after = emitQueue_.empty()
        ? fetchAddr_ : emitQueue_.back() + kInstBytes;
    if (trace->endType == BranchType::Return) {
        Addr t = ras_.pop();
        if (t != kNoAddr && image_->contains(t))
            next = t;
    }
    if (next == kNoAddr || !image_->contains(next))
        next = seq_after;

    // Speculative RAS maintenance for calls inside the trace — after
    // the end-of-trace return pop, matching the modelled order the
    // golden stats pin.
    while (call_mask) {
        const unsigned j = simd::bottomBit(call_mask);
        ras_.push(emitQueue_[j] + kInstBytes);
        call_mask &= call_mask - 1;
    }

    ntp_.specPush(trace->id());
    fetchAddr_ = next;
    return TraceTry::Hit;
}

void
TraceFetchEngine::walkStep(Cycle now, unsigned max_insts,
                           FetchBundle &out)
{
    if (!image_->contains(walk_.pc)) {
        // Wrong path ran off the image; abandon trace sequencing.
        walk_.active = false;
        fetchAddr_ = walk_.pc;
        return;
    }

    unsigned avail = reader_.available(now, walk_.pc);
    if (avail == 0)
        return;

    unsigned n = std::min(std::min(avail, max_insts),
                          walk_.instsLeft);
    for (unsigned i = 0; i < n; ++i) {
        if (!image_->contains(walk_.pc))
            break;
        const StaticInst &si = image_->inst(walk_.pc);
        FetchedInst fi;
        fi.pc = walk_.pc;
        if (si.isBranch())
            fi.token = walk_.token;
        out.push_back(fi);
        ++instsFromIcache_;
        --walk_.instsLeft;

        Addr seq = walk_.pc + kInstBytes;
        bool taken = false;
        Addr target = seq;

        switch (si.btype) {
          case BranchType::CondDirect:
            if (walk_.condsLeft > 0) {
                taken = walk_.dirBits & 1;
                walk_.dirBits >>= 1;
                --walk_.condsLeft;
            }
            specHist_.push(taken);
            if (taken)
                target = image_->takenTarget(walk_.pc);
            break;
          case BranchType::Jump:
            taken = true;
            target = image_->takenTarget(walk_.pc);
            break;
          case BranchType::Call:
            taken = true;
            target = image_->takenTarget(walk_.pc);
            ras_.push(seq);
            break;
          case BranchType::Return: {
            Addr t = ras_.pop();
            taken = true;
            target = (t != kNoAddr && image_->contains(t)) ? t : seq;
            break;
          }
          case BranchType::IndirectJump: {
            BtbEntry e = btb_.lookup(walk_.pc);
            taken = e.hit && image_->contains(e.target);
            target = taken ? e.target : seq;
            break;
          }
          default:
            break;
        }

        walk_.pc = target;
        if (walk_.instsLeft == 0)
            break;
        if (taken)
            break; // one taken branch per cycle through the i-cache
    }

    if (walk_.instsLeft == 0) {
        // Predicted trace fully fetched: resume trace sequencing.
        walk_.active = false;
        ntp_.specPush(walk_.traceId);
        Addr next = walk_.nextAfter;
        if (next == kNoAddr || !image_->contains(next))
            next = walk_.pc;
        fetchAddr_ = next;
    }
}

void
TraceFetchEngine::emitTrace(unsigned max_insts,
                            FetchBundle &out)
{
    // Branch positions were latched into emitBranchMask_ alongside
    // the queue, so emission is a straight copy: pc from the queue,
    // token from the mask, no image lookups.
    const unsigned left =
        static_cast<unsigned>(emitQueue_.size()) - emitPos_;
    const unsigned n = std::min(max_insts, left);
    const Addr *pcs = emitQueue_.data() + emitPos_;
    const std::uint64_t bm = emitBranchMask_ >> emitPos_;
    for (unsigned i = 0; i < n; ++i) {
        FetchedInst fi;
        fi.pc = pcs[i];
        if ((bm >> i) & 1u)
            fi.token = emitToken_;
        out.push_back(fi);
    }
    emitPos_ += n;
    instsFromTrace_ += n;
    if (emitPos_ >= emitQueue_.size()) {
        emitQueue_.clear();
        emitPos_ = 0;
    }
}

void
TraceFetchEngine::secondaryFetch(Cycle now, unsigned max_insts,
                                 FetchBundle &out)
{
    ++secondaryCycles_;
    if (!image_->contains(fetchAddr_))
        return;

    unsigned avail = reader_.available(now, fetchAddr_);
    if (avail == 0)
        return;

    unsigned n = std::min(avail, max_insts);
    std::uint64_t token = checkpoints_.put(
        EngineCheckpoint{ras_.save(), specHist_.value()});

    for (unsigned i = 0; i < n; ++i) {
        const StaticInst &si = image_->inst(fetchAddr_);
        FetchedInst fi;
        fi.pc = fetchAddr_;
        if (si.isBranch())
            fi.token = token;
        out.push_back(fi);
        ++instsFromIcache_;

        if (!si.isBranch()) {
            fetchAddr_ += kInstBytes;
            continue;
        }

        Addr seq = fetchAddr_ + kInstBytes;
        bool taken = false;
        Addr target = seq;

        switch (si.btype) {
          case BranchType::CondDirect: {
            bool dir = gshare_.predict(fetchAddr_, specHist_.value());
            specHist_.push(dir);
            if (dir) {
                taken = true;
                target = image_->takenTarget(fetchAddr_);
            }
            break;
          }
          case BranchType::Jump:
            taken = true;
            target = image_->takenTarget(fetchAddr_);
            break;
          case BranchType::Call:
            taken = true;
            target = image_->takenTarget(fetchAddr_);
            ras_.push(seq);
            break;
          case BranchType::Return: {
            Addr t = ras_.pop();
            taken = true;
            target = (t != kNoAddr && image_->contains(t)) ? t : seq;
            break;
          }
          case BranchType::IndirectJump: {
            BtbEntry e = btb_.lookup(fetchAddr_);
            if (e.hit && image_->contains(e.target)) {
                taken = true;
                target = e.target;
            } else {
                target = seq;
            }
            break;
          }
          default:
            break;
        }

        fetchAddr_ = target;
        if (taken)
            break; // one fetch block per cycle on the secondary path
    }
}

void
TraceFetchEngine::fetchCycle(Cycle now, unsigned max_insts,
                             FetchBundle &out)
{
    // Drain a previously latched wide trace first; predictor and
    // trace cache stall while it feeds the pipeline (footnote 2).
    if (emitPos_ < emitQueue_.size()) {
        emitTrace(max_insts, out);
        return;
    }
    if (walk_.active) {
        walkStep(now, max_insts, out);
        return;
    }

    switch (tryTracePath()) {
      case TraceTry::Hit:
        emitTrace(max_insts, out);
        return;
      case TraceTry::WalkStart:
        walkStep(now, max_insts, out);
        return;
      case TraceTry::Miss:
        break;
    }

    secondaryFetch(now, max_insts, out);
}

void
TraceFetchEngine::redirect(const ResolvedBranch &rb)
{
    ntp_.recoverHistory();
    if (const auto *cp = checkpoints_.get(rb.token)) {
        ras_.restore(cp->ras);
        specHist_.set(cp->hist);
    } else {
        specHist_.copyFrom(commitHist_);
    }
    if (rb.type == BranchType::CondDirect)
        specHist_.push(rb.taken);

    if (rb.type == BranchType::Call)
        ras_.push(rb.pc + kInstBytes);
    else if (rb.type == BranchType::Return)
        ras_.pop();

    emitQueue_.clear();
    emitPos_ = 0;
    walk_.active = false;
    fetchAddr_ = rb.target;
    fill_->onMispredict();
}

void
TraceFetchEngine::trainCommit(const CommittedBranch &cb)
{
    fill_->onBranch(cb);
    if (cb.type == BranchType::CondDirect) {
        gshare_.update(cb.pc, commitHist_.value(), cb.taken);
        commitHist_.push(cb.taken);
    } else if (cb.type == BranchType::IndirectJump) {
        btb_.update(cb.pc, cb.target, cb.type);
    }
}

void
TraceFetchEngine::reset(Addr start)
{
    fetchAddr_ = start;
    emitQueue_.clear();
    emitPos_ = 0;
    emitToken_ = 0;
    walk_ = PredWalk{};
    specHist_.clear();
    commitHist_.clear();
    fill_->reset(start);
    reader_.reset();
    // Engine-owned counters restart with the run, matching the
    // reader and fill unit: stats() after reset(start) describes
    // only the current run. Learned predictor state (trace cache,
    // NTP, gshare, BTB, RAS) persists, exactly like the other
    // engines' tables.
    traceHits_ = 0;
    traceMisses_ = 0;
    partialHits_ = 0;
    secondaryCycles_ = 0;
    instsFromTrace_ = 0;
    instsFromIcache_ = 0;
}

StatSet
TraceFetchEngine::stats() const
{
    StatSet s = ntp_.stats();
    s.set("tc.trace_hits", double(traceHits_));
    s.set("tc.trace_misses", double(traceMisses_));
    s.set("tc.partial_hits", double(partialHits_));
    s.set("tc.lookups", double(tcache_.lookups()));
    s.set("tc.inserts", double(tcache_.inserts()));
    s.set("tc.rejected_sequential",
          double(tcache_.rejectedSequential()));
    s.set("tc.secondary_cycles", double(secondaryCycles_));
    s.set("tc.insts_from_trace", double(instsFromTrace_));
    s.set("tc.insts_from_icache", double(instsFromIcache_));
    s.set("tc.traces_built", double(fill_->tracesBuilt()));
    s.set("tc.avg_trace_len", fill_->lengthHistogram().mean());
    s.set("tc.icache_misses", double(reader_.misses()));
    return s;
}

namespace detail
{

void
registerTraceEngine(EngineRegistry &reg)
{
    EngineDescriptor d;
    d.token = "trace";
    d.displayName = "Tcache+Tpred";
    d.summary =
        "trace cache with next trace prediction plus a full "
        "conventional secondary fetch path (BTB + gshare)";
    d.aliases = {"tcache"};
    d.paperDefault = true;
    d.params
        .intParam("line", 0,
                  "i-cache line bytes (0 = 4 x pipe width)")
        .intParam("ras", 8, "return address stack entries", 1)
        .intParam("gshare_entries", 8192,
                  "secondary-path gshare table entries", 1)
        .intParam("gshare_hist", 12,
                  "secondary-path gshare history bits", 1)
        .boolParam("partial_match", false,
                   "serve matching prefixes of same-start resident "
                   "traces (footnote 3: hurts optimized layouts)");
    d.factory = [](const ParamSet &p, const CodeImage &image,
                   MemoryHierarchy *mem) {
        TraceEngineConfig c;
        c.lineBytes = static_cast<unsigned>(p.getInt("line"));
        c.rasEntries = static_cast<std::size_t>(p.getInt("ras"));
        c.gshareEntries =
            static_cast<std::size_t>(p.getInt("gshare_entries"));
        c.gshareHistoryBits =
            static_cast<unsigned>(p.getInt("gshare_hist"));
        c.partialMatching = p.getBool("partial_match");
        return std::make_unique<TraceFetchEngine>(c, image, mem);
    };
    reg.add(std::move(d));
}

} // namespace detail

} // namespace sfetch

/**
 * @file
 * Set-associative cache timing model with true-LRU replacement.
 * Tracks hits/misses only (no data); latency composition is handled
 * by MemoryHierarchy.
 */

#ifndef SFETCH_CACHE_CACHE_HH
#define SFETCH_CACHE_CACHE_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "util/simd.hh"
#include "util/types.hh"

namespace sfetch
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64u << 10;
    unsigned assoc = 2;
    unsigned lineBytes = 64;

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (std::uint64_t(assoc) * lineBytes);
    }
};

/**
 * Tag-only set-associative cache with LRU replacement. access()
 * returns hit/miss and allocates on miss.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Probe and allocate. @return true on hit. Defined inline: this
     * is the per-simulated-access path of every cache level.
     */
    bool
    access(Addr addr)
    {
    ++tick_;
    const std::size_t set = setIndex(addr);
    const std::size_t base = set * cfg_.assoc;
    const Addr tag = tagOf(addr);

    // Fast path: most accesses re-touch the most recently used way
    // of the set, skipping the associative scan entirely. The tag
    // sentinel (kNoAddr = invalid; a real tag is addr >> setShift_
    // and can never reach it) folds the validity test into the tag
    // compare.
    {
        const std::size_t m = base + mru_[set];
        if (tags_[m] == tag) {
            lastUse_[m] = tick_;
            ++hits_;
            return true;
        }
    }

    // One vector compare over the set's contiguous tag words finds
    // the first way holding either the probed tag (hit) or the
    // invalid sentinel. Ways fill front-to-back and are only
    // invalidated en masse by flush(), so the first invalid way ends
    // the lookup (the tag cannot be resident beyond it) and is the
    // allocation victim.
    const std::size_t w =
        simd::findEitherU64(&tags_[base], cfg_.assoc, tag, kNoAddr);
    if (w < cfg_.assoc && tags_[base + w] == tag) {
        lastUse_[base + w] = tick_;
        mru_[set] = static_cast<std::uint32_t>(w);
        ++hits_;
        return true;
    }

    std::size_t victim = base + w;
    if (w == cfg_.assoc) {
        // Full set, no hit: evict true-LRU.
        victim = base;
        std::uint64_t oldest = lastUse_[base];
        for (unsigned k = 1; k < cfg_.assoc; ++k) {
            if (lastUse_[base + k] < oldest) {
                oldest = lastUse_[base + k];
                victim = base + k;
            }
        }
    }

    ++misses_;
    tags_[victim] = tag;
    lastUse_[victim] = tick_;
    mru_[set] = static_cast<std::uint32_t>(victim - base);
    return false;
    }

    /** Probe without allocating or touching LRU state. */
    bool probe(Addr addr) const;

    /**
     * Host-side prefetch of the way state @p addr would touch. Pure
     * performance hint for callers that know future access addresses
     * (the arena replay path): no modelled state changes.
     */
    void
    prefetch(Addr addr) const
    {
#if defined(__GNUC__) || defined(__clang__)
        const std::size_t base = setIndex(addr) * cfg_.assoc;
        __builtin_prefetch(&tags_[base], 1, 1);
        __builtin_prefetch(&lastUse_[base], 1, 1);
#else
        (void)addr; // hint only; no portable equivalent needed
#endif
    }

    /**
     * Invalidate every line, as after a context switch: the contents
     * are gone but the hit/miss counters and the LRU clock keep
     * running. Callers that restart *measurement* (not machine
     * state) want resetStats() instead; warmup boundaries reset
     * stats while keeping the warmed-up contents.
     */
    void flush();

    const CacheConfig &config() const { return cfg_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? double(misses_) / double(total) : 0.0;
    }

    /** Align @p addr down to its line base. */
    Addr
    lineBase(Addr addr) const
    {
        return addr & ~Addr(cfg_.lineBytes - 1);
    }

    /**
     * Zero the hit/miss counters, keeping contents and the LRU clock
     * (resetting the clock would make resident lines look newer than
     * every later access). This is the warmup-boundary hook used by
     * MemoryHierarchy::resetStats(); flush() is the one that drops
     * contents.
     */
    void
    resetStats()
    {
        hits_ = misses_ = 0;
    }

  private:
    std::size_t
    setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & setMask_;
    }

    Addr
    tagOf(Addr addr) const
    {
        // setShift_ >= 1, so a real tag is < 2^63 and can never
        // collide with the kNoAddr invalid sentinel in tags_.
        return addr >> setShift_;
    }

    CacheConfig cfg_;
    // Precomputed geometry: lineBytes and numSets are powers of two,
    // and hoisting the shift/mask out of access() turns four 64-bit
    // divisions per lookup into two shifts.
    unsigned lineShift_ = 0;
    unsigned setShift_ = 0; //!< lineShift_ + log2(numSets)
    std::uint64_t setMask_ = 0;
    // Way state, split SoA (row-major by set): the associative scan
    // touches only the contiguous tag words — 2-4 x 8 bytes in one
    // cache line — instead of striding over 24-byte structs; the
    // recency clock is only read on the miss path and written on
    // hits. tags_[i] == kNoAddr means the way is invalid.
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint32_t> mru_; // per-set most recently used way
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Latencies of the memory system (Table 2 of the paper). */
struct MemoryConfig
{
    CacheConfig l1i{"l1i", 64u << 10, 2, 32};
    CacheConfig l1d{"l1d", 64u << 10, 2, 64};
    CacheConfig l2{"l2", 1u << 20, 4, 64};
    Cycle l1Latency = 1;
    Cycle l2Latency = 15;
    Cycle memLatency = 100;
};

/**
 * Two-level hierarchy with a unified L2 shared by instruction and
 * data sides. Returns total access latency in cycles.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryConfig &cfg)
        : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2)
    {}

    /** Instruction fetch of the line containing @p addr. */
    Cycle
    accessInst(Addr addr)
    {
        if (l1i_.access(addr))
            return cfg_.l1Latency;
        if (l2_.access(addr))
            return cfg_.l1Latency + cfg_.l2Latency;
        return cfg_.l1Latency + cfg_.l2Latency + cfg_.memLatency;
    }

    /** Data access of the line containing @p addr. */
    Cycle
    accessData(Addr addr)
    {
        if (l1d_.access(addr))
            return cfg_.l1Latency;
        if (l2_.access(addr))
            return cfg_.l1Latency + cfg_.l2Latency;
        return cfg_.l1Latency + cfg_.l2Latency + cfg_.memLatency;
    }

    /**
     * Host-side prefetch of the tag state a future accessData(@p
     * addr) will touch (both levels; the L2 probe only happens on an
     * L1 miss, but the hint is cheap and the model state untouched).
     */
    void
    prefetchData(Addr addr) const
    {
        l1d_.prefetch(addr);
        l2_.prefetch(addr);
    }

    /** Instruction-side analog of prefetchData (host hint only). */
    void
    prefetchInst(Addr addr) const
    {
        l1i_.prefetch(addr);
        l2_.prefetch(addr);
    }

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    Cache &l1iMutable() { return l1i_; }
    const MemoryConfig &config() const { return cfg_; }

    void
    resetStats()
    {
        l1i_.resetStats();
        l1d_.resetStats();
        l2_.resetStats();
    }

  private:
    MemoryConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace sfetch

#endif // SFETCH_CACHE_CACHE_HH

#include "cache/cache.hh"

namespace sfetch
{

namespace
{

[[maybe_unused]] bool
isPow2(std::uint64_t x)
{
    return x && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    assert(isPow2(cfg_.lineBytes));
    assert(isPow2(cfg_.numSets()));
    assert(cfg_.assoc >= 1);
    assert(cfg_.sizeBytes % (std::uint64_t(cfg_.assoc) * cfg_.lineBytes)
           == 0);
    tags_.assign(cfg_.numSets() * cfg_.assoc, kNoAddr);
    lastUse_.assign(cfg_.numSets() * cfg_.assoc, 0);
    mru_.assign(cfg_.numSets(), 0);
    while ((Addr(1) << lineShift_) < cfg_.lineBytes)
        ++lineShift_;
    setMask_ = cfg_.numSets() - 1;
    setShift_ = lineShift_;
    while ((std::uint64_t(1) << (setShift_ - lineShift_)) <
           cfg_.numSets())
        ++setShift_;
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t base = setIndex(addr) * cfg_.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < cfg_.assoc; ++w)
        if (tags_[base + w] == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &t : tags_)
        t = kNoAddr;
    for (auto &u : lastUse_)
        u = 0;
    for (auto &m : mru_)
        m = 0;
}

} // namespace sfetch

#include "cache/cache.hh"

namespace sfetch
{

namespace
{

[[maybe_unused]] bool
isPow2(std::uint64_t x)
{
    return x && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    assert(isPow2(cfg_.lineBytes));
    assert(isPow2(cfg_.numSets()));
    assert(cfg_.assoc >= 1);
    assert(cfg_.sizeBytes % (std::uint64_t(cfg_.assoc) * cfg_.lineBytes)
           == 0);
    ways_.resize(cfg_.numSets() * cfg_.assoc);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / cfg_.lineBytes) & (cfg_.numSets() - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / cfg_.lineBytes / cfg_.numSets();
}

bool
Cache::access(Addr addr)
{
    ++tick_;
    const std::size_t base = setIndex(addr) * cfg_.assoc;
    const Addr tag = tagOf(addr);

    std::size_t victim = base;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = tick_;
            ++hits_;
            return true;
        }
        std::uint64_t age = way.valid ? way.lastUse : 0;
        if (!way.valid) {
            victim = base + w;
            oldest = 0;
        } else if (age < oldest) {
            oldest = age;
            victim = base + w;
        }
    }

    ++misses_;
    Way &way = ways_[victim];
    way.valid = true;
    way.tag = tag;
    way.lastUse = tick_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t base = setIndex(addr) * cfg_.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        const Way &way = ways_[base + w];
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &w : ways_)
        w = Way{};
}

} // namespace sfetch
